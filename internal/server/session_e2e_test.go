// End-to-end tests of the /v1/session streaming API over a live
// listener: NDJSON frame streams, byte-identity against the per-frame
// endpoints, delta-reuse counters, and the failure paths (busy,
// disconnect, drain, idle expiry, limit).
package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"lightator"
	"lightator/internal/server"
)

// e2eScenes builds n mostly-static 32x32 frames: a fixed background
// with a bright square that jumps every period frames (period 0 keeps
// it pinned — a fully static stream).
func e2eScenes(n, period int) []*lightator.Image {
	base := testScene(42, 32, 32)
	frames := make([]*lightator.Image, n)
	for f := range frames {
		s := base.Clone()
		pos := 0
		if period > 0 {
			pos = (f / period) % 24
		}
		for y := pos; y < pos+6; y++ {
			for x := pos; x < pos+6; x++ {
				for c := 0; c < 3; c++ {
					s.Pix[(y*32+x)*3+c] = 1
				}
			}
		}
		frames[f] = s
	}
	return frames
}

// openSession opens a session and fails the test on any non-200.
func openSession(t *testing.T, base string, req server.SessionRequest) server.SessionResponse {
	t.Helper()
	var sr server.SessionResponse
	status, body := postJSON(t, base+"/v1/session", req, &sr)
	if status != http.StatusOK {
		t.Fatalf("open session: status %d: %s", status, body)
	}
	if sr.ID == "" {
		t.Fatalf("open session: empty id in %+v", sr)
	}
	return sr
}

// streamLine is one NDJSON response line: a frame result or, on the
// last line of a clean stream, the summary record.
type streamLine struct {
	server.SessionResult
	server.SessionSummary
}

// frameStream drives one POST /v1/session/{id}/frames request with
// full control over when frames are written and results read. It
// speaks HTTP/1.1 chunked framing over a raw TCP connection because
// net/http's HTTP/1.1 client is half-duplex: it buffers request-body
// writes and stops uploading once response headers arrive — exactly
// what an interactive frame stream cannot tolerate.
type frameStream struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	resp *http.Response
	sc   *bufio.Scanner
}

func startFrames(t *testing.T, base, id string) *frameStream {
	t.Helper()
	host := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	req := "POST /v1/session/" + id + "/frames HTTP/1.1\r\n" +
		"Host: " + host + "\r\n" +
		"Content-Type: application/x-ndjson\r\n" +
		"Transfer-Encoding: chunked\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatal(err)
	}
	return &frameStream{t: t, conn: conn, br: bufio.NewReader(conn)}
}

// writeChunk frames one body chunk; every NDJSON line is one chunk, so
// the server always sees whole lines promptly.
func (fs *frameStream) writeChunk(p []byte) {
	fs.t.Helper()
	if _, err := fmt.Fprintf(fs.conn, "%x\r\n%s\r\n", len(p), p); err != nil {
		fs.t.Fatalf("write frame chunk: %v", err)
	}
}

func (fs *frameStream) send(img *lightator.Image) {
	fs.t.Helper()
	line, err := json.Marshal(server.SessionFrame{Scene: server.EncodeImage(img)})
	if err != nil {
		fs.t.Fatal(err)
	}
	fs.writeChunk(append(line, '\n'))
}

func (fs *frameStream) sendRaw(line string) {
	fs.t.Helper()
	fs.writeChunk([]byte(line + "\n"))
}

// response waits for the response headers (committed by the first
// result line, or immediately on a pre-stream failure).
func (fs *frameStream) response() *http.Response {
	fs.t.Helper()
	if fs.resp == nil {
		resp, err := http.ReadResponse(fs.br, nil)
		if err != nil {
			fs.t.Fatalf("read frame stream response: %v", err)
		}
		fs.resp = resp
		fs.sc = bufio.NewScanner(resp.Body)
		fs.sc.Buffer(make([]byte, 64<<10), 64<<20)
	}
	return fs.resp
}

// next reads one NDJSON line, blocking until the server emits it.
func (fs *frameStream) next() (streamLine, bool) {
	fs.t.Helper()
	fs.response()
	if !fs.sc.Scan() {
		if err := fs.sc.Err(); err != nil {
			fs.t.Fatalf("read stream: %v", err)
		}
		return streamLine{}, false
	}
	var ln streamLine
	if err := json.Unmarshal(fs.sc.Bytes(), &ln); err != nil {
		fs.t.Fatalf("decode stream line %q: %v", fs.sc.Text(), err)
	}
	return ln, true
}

// finish ends the request body cleanly (terminal chunk).
func (fs *frameStream) finish() {
	fs.t.Helper()
	if _, err := io.WriteString(fs.conn, "0\r\n\r\n"); err != nil {
		fs.t.Fatalf("finish frame stream: %v", err)
	}
}

// abort tears the connection down mid-stream, like a vanished client.
func (fs *frameStream) abort() { fs.conn.Close() }

// close releases client-side resources at test end.
func (fs *frameStream) close() { fs.conn.Close() }

// streamAll sends every scene, closes the input, and collects the
// ordered results plus the trailing summary.
func streamAll(t *testing.T, base, id string, scenes []*lightator.Image) ([]server.SessionResult, server.SessionSummary) {
	t.Helper()
	fs := startFrames(t, base, id)
	defer fs.close()
	for _, s := range scenes {
		fs.send(s)
	}
	fs.finish()
	if resp := fs.response(); resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("frame stream: status %d: %s", resp.StatusCode, body)
	}
	var results []server.SessionResult
	for {
		ln, ok := fs.next()
		if !ok {
			t.Fatalf("stream ended after %d results without a summary", len(results))
		}
		if ln.Done {
			return results, ln.SessionSummary
		}
		if ln.Error != nil {
			t.Fatalf("frame %d failed in-stream: %+v", ln.Index, ln.Error)
		}
		results = append(results, ln.SessionResult)
	}
}

// assertErrShape decodes body as the structured error and checks the
// stable code plus the legacy "error" field.
func assertErrShape(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body %q does not decode: %v", body, err)
	}
	if er.Code != wantCode {
		t.Fatalf("error code %q, want %q (body %q)", er.Code, wantCode, body)
	}
	if er.Message == "" || er.Error == "" {
		t.Fatalf("incomplete error shape %+v", er)
	}
}

// TestSessionStreamMatchesPerFrame is the tentpole acceptance check at
// the wire: for every kind, streamed result bytes are identical to the
// corresponding per-frame endpoint called with seed
// DeriveSeed(sessionSeed, i) — across fidelities and worker counts,
// with the delta engine live on a mostly-static stream.
func TestSessionStreamMatchesPerFrame(t *testing.T) {
	const frames = 6
	sessSeed := int64(0xbeef)
	scenes := e2eScenes(frames, 2)
	for _, fid := range []lightator.Fidelity{lightator.Ideal, lightator.PhysicalNoisy} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", fid, workers), func(t *testing.T) {
				acc := testAccelerator(t, fid)
				_, ts := testServer(t, acc, lightator.ServeOptions{
					Workers: workers, BatchSize: 4, BatchDelay: time.Millisecond,
				})
				for _, kind := range []string{"compress", "process", "infer"} {
					sr := openSession(t, ts.URL, server.SessionRequest{
						Kind: kind, Kernel: "edge", Model: "tiny-cnn", Seed: &sessSeed,
					})
					results, summary := streamAll(t, ts.URL, sr.ID, scenes)
					if len(results) != frames {
						t.Fatalf("kind %s: %d results, want %d", kind, len(results), frames)
					}
					if summary.Stats.Frames != frames {
						t.Fatalf("kind %s: summary frames %d, want %d", kind, summary.Stats.Frames, frames)
					}
					for i, rec := range results {
						if rec.Index != i {
							t.Fatalf("kind %s: result %d has index %d", kind, i, rec.Index)
						}
						seed := lightator.DeriveSeed(sessSeed, i)
						wire := server.EncodeImage(scenes[i])
						switch kind {
						case "compress":
							var ref server.CompressResponse
							status, body := postJSON(t, ts.URL+"/v1/compress", server.NewCompressRequest(wire, &seed), &ref)
							if status != http.StatusOK {
								t.Fatalf("per-frame compress: %d: %s", status, body)
							}
							if rec.Image == nil || rec.Image.Pix != ref.Image.Pix {
								t.Fatalf("compress frame %d: streamed bytes differ from per-frame call", i)
							}
						case "process":
							var ref server.ProcessResponse
							status, body := postJSON(t, ts.URL+"/v1/process", server.NewProcessRequest(wire, "edge", &seed), &ref)
							if status != http.StatusOK {
								t.Fatalf("per-frame process: %d: %s", status, body)
							}
							if rec.Plane == nil || rec.Plane.Pix != ref.Plane.Pix {
								t.Fatalf("process frame %d: streamed bytes differ from per-frame call", i)
							}
						case "infer":
							req := server.InferRequest{Scene: &wire, Model: "tiny-cnn"}
							req.Seed = &seed
							var ref server.InferResponse
							status, body := postJSON(t, ts.URL+"/v1/infer", req, &ref)
							if status != http.StatusOK {
								t.Fatalf("per-frame infer: %d: %s", status, body)
							}
							if len(rec.Logits) != len(ref.Logits) {
								t.Fatalf("infer frame %d: %d logits, want %d", i, len(rec.Logits), len(ref.Logits))
							}
							for j := range ref.Logits {
								if rec.Logits[j] != ref.Logits[j] {
									t.Fatalf("infer frame %d: logit %d differs: %g vs %g", i, j, rec.Logits[j], ref.Logits[j])
								}
							}
							if rec.Class == nil || *rec.Class != ref.Class {
								t.Fatalf("infer frame %d: class %v, want %d", i, rec.Class, ref.Class)
							}
						}
					}
				}
			})
		}
	}
}

// TestSessionDeltaReuseCounters: a static stream reuses compute, the
// counters surface it through GET, DELETE, and /metrics, and noisy
// fidelity reports delta inactive.
func TestSessionDeltaReuseCounters(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchSize: 2, BatchDelay: time.Millisecond})

	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "process", Kernel: "edge"})
	if !sr.DeltaActive {
		t.Fatalf("delta inactive on a deterministic process session: %+v", sr)
	}
	const frames = 5
	results, summary := streamAll(t, ts.URL, sr.ID, e2eScenes(frames, 0))
	if summary.Stats.BlocksReused <= 0 {
		t.Fatalf("static stream reused %d blocks, want > 0", summary.Stats.BlocksReused)
	}
	var reused int64
	for _, rec := range results[1:] {
		reused += int64(rec.BlocksReused)
	}
	if reused != summary.Stats.BlocksReused {
		t.Fatalf("per-record reuse %d does not add up to summary %d", reused, summary.Stats.BlocksReused)
	}

	var stats server.SessionStatsResponse
	status, body := getJSON(t, ts.URL+"/v1/session/"+sr.ID, &stats)
	if status != http.StatusOK {
		t.Fatalf("session stats: %d: %s", status, body)
	}
	if stats.Stats != summary.Stats {
		t.Fatalf("GET stats %+v differ from stream summary %+v", stats.Stats, summary.Stats)
	}

	var m struct {
		Sessions struct {
			Open         int   `json:"open"`
			Frames       int64 `json:"frames_total"`
			BlocksReused int64 `json:"blocks_reused_total"`
		} `json:"sessions"`
	}
	status, body = getJSON(t, ts.URL+"/metrics?format=json", &m)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d: %s", status, body)
	}
	if m.Sessions.Open != 1 || m.Sessions.Frames < frames || m.Sessions.BlocksReused <= 0 {
		t.Fatalf("metrics sessions %+v: want open 1, frames >= %d, reuse > 0", m.Sessions, frames)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sr.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final server.SessionStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || final.Stats != summary.Stats {
		t.Fatalf("close: status %d stats %+v, want 200 with %+v", resp.StatusCode, final.Stats, summary.Stats)
	}
	if status, body = getJSON(t, ts.URL+"/v1/session/"+sr.ID, nil); status != http.StatusNotFound {
		t.Fatalf("closed session still resolvable: %d: %s", status, body)
	} else {
		assertErrShape(t, body, server.CodeSessionNotFound)
	}

	// Noisy fidelity: reuse is off by construction, and the open
	// response says so.
	nacc := testAccelerator(t, lightator.PhysicalNoisy)
	_, nts := testServer(t, nacc, lightator.ServeOptions{Workers: 1, BatchSize: 1, BatchDelay: time.Millisecond})
	nsr := openSession(t, nts.URL, server.SessionRequest{Kind: "process", Kernel: "edge"})
	if nsr.DeltaActive {
		t.Fatal("delta active under PhysicalNoisy")
	}
	_, nsum := streamAll(t, nts.URL, nsr.ID, e2eScenes(3, 0))
	if nsum.Stats.BlocksReused != 0 {
		t.Fatalf("noisy session reused %d blocks, want 0", nsum.Stats.BlocksReused)
	}

	// Explicit opt-out: delta.disable wins even when deterministic.
	dsr := openSession(t, ts.URL, server.SessionRequest{Kind: "process", Kernel: "edge", Delta: &server.DeltaWire{Disable: true}})
	if dsr.DeltaActive {
		t.Fatal("delta active despite delta.disable")
	}
}

// TestSessionErrorShapes: every non-200 on the session surface carries
// the structured {"code","message","detail"} body.
func TestSessionErrorShapes(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchSize: 1, BatchDelay: time.Millisecond})

	status, body := postJSON(t, ts.URL+"/v1/session", server.SessionRequest{Kind: "transmogrify"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad kind: %d", status)
	}
	assertErrShape(t, body, server.CodeBadRequest)

	status, body = postJSON(t, ts.URL+"/v1/session", server.SessionRequest{Kind: "process", Kernel: "no-such"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown kernel: %d", status)
	}
	assertErrShape(t, body, server.CodeUnknownKernel)

	status, body = postJSON(t, ts.URL+"/v1/session", server.SessionRequest{Kind: "infer", Model: "no-such"}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown model: %d", status)
	}
	assertErrShape(t, body, server.CodeUnknownModel)

	if status, body = getJSON(t, ts.URL+"/v1/session/s-nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown id stats: %d", status)
	} else {
		assertErrShape(t, body, server.CodeSessionNotFound)
	}

	resp, err := http.Post(ts.URL+"/v1/session/s-nope/frames", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id frames: %d: %s", resp.StatusCode, body)
	}
	assertErrShape(t, body, server.CodeSessionNotFound)

	// A malformed first line fails the whole request with a proper
	// status — nothing has been streamed yet.
	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "compress"})
	resp, err = http.Post(ts.URL+"/v1/session/"+sr.ID+"/frames", "application/x-ndjson", strings.NewReader("{\"scene\":17}\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed first line: %d: %s", resp.StatusCode, body)
	}
	assertErrShape(t, body, server.CodeBadRequest)

	// A bad frame after good output arrives as a final index -1 record
	// on the already-committed 200 stream.
	fs := startFrames(t, ts.URL, sr.ID)
	defer fs.close()
	fs.send(e2eScenes(1, 0)[0])
	if ln, ok := fs.next(); !ok || ln.Index != 0 || ln.Error != nil {
		t.Fatalf("first frame: %+v ok=%v", ln, ok)
	}
	fs.sendRaw(`{"scene":{"h":1,"w":1,"c":1,"pix_b64":"zzz"}}`)
	sawFatal := false
	for {
		ln, ok := fs.next()
		if !ok {
			break
		}
		if ln.Index == -1 && ln.Error != nil {
			if ln.Error.Code != server.CodeInvalidImage {
				t.Fatalf("stream-fatal code %q, want %q", ln.Error.Code, server.CodeInvalidImage)
			}
			sawFatal = true
		}
	}
	if !sawFatal {
		t.Fatal("bad mid-stream frame produced no index -1 error record")
	}
}

// TestSessionBusyDisconnectResume: one stream at a time (409 busy), a
// vanished client leaves the session open, and the next stream resumes
// the seed chain at the next frame index.
func TestSessionBusyDisconnectResume(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchSize: 1, BatchDelay: time.Millisecond})
	sessSeed := int64(777)
	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "compress", Seed: &sessSeed})
	scenes := e2eScenes(3, 1)

	fs := startFrames(t, ts.URL, sr.ID)
	fs.send(scenes[0])
	if ln, ok := fs.next(); !ok || ln.Index != 0 {
		t.Fatalf("first frame: %+v ok=%v", ln, ok)
	}

	// Second concurrent stream: 409 with the session_busy code.
	resp, err := http.Post(ts.URL+"/v1/session/"+sr.ID+"/frames", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent stream: %d: %s", resp.StatusCode, body)
	}
	assertErrShape(t, body, server.CodeSessionBusy)

	// Client vanishes mid-stream. The session survives...
	fs.abort()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var stats server.SessionStatsResponse
		if status, _ := getJSON(t, ts.URL+"/v1/session/"+sr.ID, &stats); status != http.StatusOK {
			t.Fatalf("session gone after client disconnect: %d", status)
		} else if stats.Stats.Frames == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never settled after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ...and the next stream picks up at index 1 with the same bytes a
	// per-frame call at DeriveSeed(sessionSeed, 1) produces.
	results, _ := streamAll(t, ts.URL, sr.ID, scenes[1:])
	if len(results) != 2 || results[0].Index != 1 || results[1].Index != 2 {
		t.Fatalf("resumed stream results %+v, want indices 1,2", results)
	}
	seed := lightator.DeriveSeed(sessSeed, 1)
	var ref server.CompressResponse
	if status, body := postJSON(t, ts.URL+"/v1/compress", server.NewCompressRequest(server.EncodeImage(scenes[1]), &seed), &ref); status != http.StatusOK {
		t.Fatalf("per-frame compress: %d: %s", status, body)
	}
	if results[0].Image == nil || results[0].Image.Pix != ref.Image.Pix {
		t.Fatal("resumed frame 1 bytes differ from the per-frame call")
	}
}

// TestSessionDrainDuringStream: draining closes active sessions — the
// in-flight stream ends with an in-stream draining record, and new
// opens are refused with 503.
func TestSessionDrainDuringStream(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchSize: 1, BatchDelay: time.Millisecond})
	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "compress"})

	fs := startFrames(t, ts.URL, sr.ID)
	defer fs.close()
	fs.send(e2eScenes(1, 0)[0])
	if ln, ok := fs.next(); !ok || ln.Index != 0 {
		t.Fatalf("first frame: %+v ok=%v", ln, ok)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	sawDraining := false
	for {
		ln, ok := fs.next()
		if !ok {
			break
		}
		if ln.Index == -1 && ln.Error != nil && ln.Error.Code == server.CodeDraining {
			sawDraining = true
		}
	}
	if !sawDraining {
		t.Fatal("drain did not surface an in-stream draining record")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if status, body := postJSON(t, ts.URL+"/v1/session", server.SessionRequest{Kind: "compress"}, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("open while drained: %d: %s", status, body)
	} else {
		assertErrShape(t, body, server.CodeDraining)
	}
}

// TestSessionIdleExpiryAndLimit: idle sessions expire server-side, and
// the open-session cap returns 429 session_limit.
func TestSessionIdleExpiryAndLimit(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{
		Workers: 1, BatchSize: 1, BatchDelay: time.Millisecond,
		MaxSessions: 2, SessionIdleTimeout: 50 * time.Millisecond,
	})
	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "compress"})
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := getJSON(t, ts.URL+"/v1/session/"+sr.ID, nil)
		if status == http.StatusNotFound {
			assertErrShape(t, body, server.CodeSessionNotFound)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Long-lived sessions for the cap check.
	idle := int64(60_000)
	openSession(t, ts.URL, server.SessionRequest{Kind: "compress", IdleTimeoutMS: idle})
	openSession(t, ts.URL, server.SessionRequest{Kind: "compress", IdleTimeoutMS: idle})
	status, body := postJSON(t, ts.URL+"/v1/session", server.SessionRequest{Kind: "compress", IdleTimeoutMS: idle}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-cap open: %d: %s", status, body)
	}
	assertErrShape(t, body, server.CodeSessionLimit)
}

// getJSON fetches url, decoding a 200 body into out when non-nil.
func getJSON(t *testing.T, url string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, body)
		}
	}
	return resp.StatusCode, body
}
