// End-to-end tests of the observability layer: per-request trace
// headers, the GET /debug/traces ring, the energy/queue/cache gauges in
// /metrics, and the opt-in debug mux. See docs/OBSERVABILITY.md.
package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lightator"
	"lightator/internal/server"
)

// getBody GETs a URL and returns status + body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// postRaw posts v and returns the full response (caller closes Body).
func postRaw(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTraceHeadersAndDebugTraces: a served /v1/compress request carries
// the structured trace headers, and GET /debug/traces returns the
// per-stage spans with modeled op counts and priced energy.
func TestTraceHeadersAndDebugTraces(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, CacheEntries: -1})

	scene := testScene(42, 32, 32)
	resp := postRaw(t, ts.URL+"/v1/compress", lightator.NewCompressRequest(lightator.EncodeImage(scene), nil))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Lightator-Trace-Id")
	if len(id) != 16 {
		t.Errorf("X-Lightator-Trace-Id = %q, want 16 hex digits", id)
	}
	ops := resp.Header.Get("X-Lightator-Ops")
	if !strings.Contains(ops, "comparator_fires=15360") { // 32*32*15
		t.Errorf("X-Lightator-Ops = %q, want capture comparator fires 15360", ops)
	}
	if !strings.Contains(ops, "mr_coeff_holds=") {
		t.Errorf("X-Lightator-Ops = %q missing mr_coeff_holds", ops)
	}
	if resp.Header.Get("X-Lightator-Energy-J") == "" {
		t.Error("X-Lightator-Energy-J header missing")
	}
	stageNS := resp.Header.Get("X-Lightator-Stage-Ns")
	if !strings.Contains(stageNS, "capture=") || !strings.Contains(stageNS, "compress=") {
		t.Errorf("X-Lightator-Stage-Ns = %q, want capture= and compress= entries", stageNS)
	}
	io.Copy(io.Discard, resp.Body)

	status, body := getBody(t, ts.URL+"/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces status %d", status)
	}
	var tr server.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode traces: %v (%s)", err, body)
	}
	if tr.Total < 1 || len(tr.Traces) < 1 {
		t.Fatalf("traces total=%d held=%d, want >= 1", tr.Total, len(tr.Traces))
	}
	last := tr.Traces[len(tr.Traces)-1]
	if last.ID != id {
		t.Errorf("newest trace id %q != response header id %q", last.ID, id)
	}
	if last.Endpoint != "/v1/compress" {
		t.Errorf("endpoint %q, want /v1/compress", last.Endpoint)
	}
	if last.EnergyJ <= 0 || last.ModeledKFPSPerW <= 0 {
		t.Errorf("energy %g / kfps-per-w %g, want positive", last.EnergyJ, last.ModeledKFPSPerW)
	}
	stages := map[string]bool{}
	for _, sp := range last.Spans {
		stages[sp.Stage] = true
	}
	if !stages["capture"] || !stages["compress"] {
		t.Errorf("spans %v, want capture and compress stages", stages)
	}
	for _, sp := range last.Spans {
		if sp.Stage == "capture" && sp.Ops.ComparatorFires != 32*32*15 {
			t.Errorf("capture span fires %d, want %d", sp.Ops.ComparatorFires, 32*32*15)
		}
		if sp.Stage == "compress" && (sp.Ops.MVMRows <= 0 || sp.Ops.DACSettles != 0) {
			t.Errorf("compress span ops %+v: CA rows must be positive with zero DAC settles", sp.Ops)
		}
	}

	// ?limit keeps the newest N; a bad limit is a 400.
	status, body = getBody(t, ts.URL+"/debug/traces?limit=1")
	if status != http.StatusOK {
		t.Fatalf("limit=1 status %d", status)
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 1 {
		t.Errorf("limit=1 returned %d traces", len(tr.Traces))
	}
	if status, _ = getBody(t, ts.URL+"/debug/traces?limit=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad limit status %d, want 400", status)
	}
}

// TestTraceCacheHit: a cache-served repeat request is flagged by the
// X-Lightator-Cache header and recorded as a span-less cache-hit trace.
func TestTraceCacheHit(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, CacheEntries: 8})

	req := lightator.NewCaptureRequest(lightator.EncodeImage(testScene(7, 32, 32)), nil)
	first := postRaw(t, ts.URL+"/v1/capture", req)
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if got := first.Header.Get("X-Lightator-Cache"); got != "miss" {
		t.Errorf("first request X-Lightator-Cache = %q, want miss", got)
	}
	second := postRaw(t, ts.URL+"/v1/capture", req)
	io.Copy(io.Discard, second.Body)
	second.Body.Close()
	if got := second.Header.Get("X-Lightator-Cache"); got != "hit" {
		t.Errorf("repeat request X-Lightator-Cache = %q, want hit", got)
	}
	if second.Header.Get("X-Lightator-Trace-Id") == first.Header.Get("X-Lightator-Trace-Id") {
		t.Error("cache hit reused the miss's trace id")
	}

	_, body := getBody(t, ts.URL+"/debug/traces")
	var tr server.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	last := tr.Traces[len(tr.Traces)-1]
	if !last.CacheHit || len(last.Spans) != 0 || last.EnergyJ != 0 {
		t.Errorf("cache-hit trace %+v: want CacheHit, no spans, zero energy", last)
	}
}

// TestMetricsGauges: /metrics exports the observability gauges — cache
// size/capacity, per-endpoint queue state, and the two energy series
// per pipeline — in Prometheus text form and in the JSON snapshot.
func TestMetricsGauges(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, CacheEntries: 8})

	// One request so counters are warm.
	resp := postRaw(t, ts.URL+"/v1/compress", lightator.NewCompressRequest(lightator.EncodeImage(testScene(3, 32, 32)), nil))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	text := string(body)
	for _, series := range []string{
		"lightator_uptime_seconds",
		"lightator_cache_capacity 8",
		"lightator_cache_bytes",
		`lightator_queue_depth{endpoint="/v1/capture"}`,
		`lightator_batch_occupancy{endpoint="/v1/compress"}`,
		`lightator_inflight_batches{endpoint="/v1/compress"}`,
		`lightator_energy_j_per_request{pipeline="capture"}`,
		`lightator_energy_j_per_request{pipeline="compress"}`,
		`lightator_modeled_kfps_per_w{pipeline="compress"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	// Kernel and model series exist for every registered name.
	for _, k := range acc.Kernels() {
		if !strings.Contains(text, `lightator_energy_j_per_request{pipeline="process:`+k+`"}`) {
			t.Errorf("/metrics missing energy series for kernel %s", k)
		}
	}
	for _, m := range acc.Models() {
		if !strings.Contains(text, `lightator_modeled_kfps_per_w{pipeline="infer:`+m+`"}`) {
			t.Errorf("/metrics missing efficiency series for model %s", m)
		}
	}

	// The JSON snapshot carries the same gauges, and the capture series
	// (comparator fires only, no optical rows) still prices to positive
	// joules.
	snap := srv.Metrics()
	if snap.CacheCapacity != 8 {
		t.Errorf("CacheCapacity %d, want 8", snap.CacheCapacity)
	}
	cap, ok := snap.Energy["capture"]
	if !ok || cap.EnergyJPerRequest <= 0 {
		t.Errorf("capture energy gauge %+v ok=%v, want positive", cap, ok)
	}
	comp, ok := snap.Energy["compress"]
	if !ok || comp.EnergyJPerRequest <= cap.EnergyJPerRequest {
		t.Errorf("compress gauge %+v must out-price capture %+v (CA adds optical work)", comp, cap)
	}
	if _, ok := snap.Queues["/v1/compress"]; !ok {
		t.Errorf("queue snapshot missing /v1/compress: %v", snap.Queues)
	}
}

// TestDebugMuxGating: pprof and /debug/runtime mount only when Debug is
// set; /debug/traces is always available.
func TestDebugMuxGating(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, plain := testServer(t, acc, lightator.ServeOptions{Workers: 1})
	if status, _ := getBody(t, plain.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof mounted without Debug: status %d", status)
	}
	if status, _ := getBody(t, plain.URL+"/debug/runtime"); status != http.StatusNotFound {
		t.Errorf("/debug/runtime mounted without Debug: status %d", status)
	}
	if status, _ := getBody(t, plain.URL+"/debug/traces"); status != http.StatusOK {
		t.Errorf("/debug/traces absent without Debug: status %d", status)
	}

	acc2 := testAccelerator(t, lightator.Physical)
	_, dbg := testServer(t, acc2, lightator.ServeOptions{Workers: 1, Debug: true})
	if status, _ := getBody(t, dbg.URL+"/debug/pprof/"); status != http.StatusOK {
		t.Errorf("pprof index status %d with Debug", status)
	}
	status, body := getBody(t, dbg.URL+"/debug/runtime")
	if status != http.StatusOK {
		t.Fatalf("/debug/runtime status %d with Debug", status)
	}
	var snap server.RuntimeSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode runtime snapshot: %v (%s)", err, body)
	}
	if snap.Goroutines <= 0 || snap.GOMAXPROCS <= 0 || snap.HeapAllocBytes == 0 {
		t.Errorf("runtime snapshot not populated: %+v", snap)
	}
	if snap.Queues == nil {
		t.Error("runtime snapshot missing queue gauges")
	}
}

// TestTraceRetentionDisabled: TraceEntries < 0 disables the ring but
// the response headers still flow.
func TestTraceRetentionDisabled(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, TraceEntries: -1})

	resp := postRaw(t, ts.URL+"/v1/compress", lightator.NewCompressRequest(lightator.EncodeImage(testScene(5, 32, 32)), nil))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Lightator-Trace-Id") == "" {
		t.Error("trace headers must still be set with retention disabled")
	}

	_, body := getBody(t, ts.URL+"/debug/traces")
	var tr server.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total != 0 || len(tr.Traces) != 0 {
		t.Errorf("disabled ring retained traces: total=%d held=%d", tr.Total, len(tr.Traces))
	}
}

// TestTraceMatVecAndSimulate: the unbatched endpoints trace too —
// matvec with analytically derived op counts, simulate with zero (it
// is a digital model run).
func TestTraceMatVecAndSimulate(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, CacheEntries: -1})

	w := [][]float64{{0.5, -0.25, 0.1}, {0.2, 0.3, -0.4}}
	x := []float64{1, 0.5, 0.25}
	resp := postRaw(t, ts.URL+"/v1/matvec", lightator.MatVecRequest{Weights: w, Activations: x})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matvec status %d", resp.StatusCode)
	}
	ops := resp.Header.Get("X-Lightator-Ops")
	if !strings.Contains(ops, "mvm_rows=2") || !strings.Contains(ops, "dac_settles=6") {
		t.Errorf("matvec ops %q, want 2 rows and 6 settles for a 2x3 matrix", ops)
	}

	resp = postRaw(t, ts.URL+"/v1/simulate", lightator.SimulateRequest{Model: "lenet"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d", resp.StatusCode)
	}
	if ops := resp.Header.Get("X-Lightator-Ops"); !strings.Contains(ops, "mvm_rows=0") {
		t.Errorf("simulate ops %q, want all-zero (digital run)", ops)
	}

	_, body := getBody(t, ts.URL+"/debug/traces")
	var tr server.TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	endpoints := map[string]bool{}
	for _, rec := range tr.Traces {
		endpoints[rec.Endpoint] = true
	}
	if !endpoints["/v1/matvec"] || !endpoints["/v1/simulate"] {
		t.Errorf("traced endpoints %v, want /v1/matvec and /v1/simulate", endpoints)
	}
}

// TestTraceRingEviction: the ring caps retention and Total keeps
// counting past eviction.
func TestTraceRingEviction(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, TraceEntries: 2, CacheEntries: -1})

	for i := 0; i < 4; i++ {
		resp := postRaw(t, ts.URL+"/v1/capture", lightator.NewCaptureRequest(lightator.EncodeImage(testScene(int64(i), 32, 32)), nil))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// The batched endpoints respond before the trace ring add completes
	// in rare schedules; poll briefly rather than flake.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body := getBody(t, ts.URL+"/debug/traces")
		var tr server.TracesResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		if tr.Total >= 4 && len(tr.Traces) == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring state total=%d held=%d, want total>=4 held=2", tr.Total, len(tr.Traces))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
