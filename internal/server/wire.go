// Wire formats of the serving layer. Images and frames travel as JSON
// envelopes carrying base64-encoded raw sample bytes: float64 samples are
// little-endian IEEE 754, frame codes one byte per pixel. The encoding is
// lossless, so a value that round-trips through the wire is bit-identical
// to the original — the property the serving layer's determinism contract
// (docs/SERVER.md) is stated in terms of.
package server

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"

	"lightator/internal/sensor"
	"lightator/internal/session"
)

// ImageWire is the transport form of a sensor.Image.
type ImageWire struct {
	H int `json:"h"`
	W int `json:"w"`
	C int `json:"c"`
	// Pix is base64 (StdEncoding) of H*W*C little-endian float64 samples.
	Pix string `json:"pix_b64"`
}

// FrameWire is the transport form of a sensor.Frame (4-bit codes, one
// byte per pixel).
type FrameWire struct {
	Rows  int    `json:"rows"`
	Cols  int    `json:"cols"`
	Codes string `json:"codes_b64"`
}

// floatBytes returns the little-endian byte representation of xs.
func floatBytes(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// EncodeImage converts an image to its wire form.
func EncodeImage(im *sensor.Image) ImageWire {
	return ImageWire{
		H: im.H, W: im.W, C: im.C,
		Pix: base64.StdEncoding.EncodeToString(floatBytes(im.Pix)),
	}
}

// DecodeImage validates and converts a wire image back to a sensor.Image.
func DecodeImage(w ImageWire) (*sensor.Image, error) {
	raw, err := validateImageWire(w)
	if err != nil {
		return nil, err
	}
	return imageFromRaw(w, raw), nil
}

// maxWireDim bounds each wire dimension. Far beyond any plausible sensor,
// but small enough that dimension products cannot overflow int — without
// the bound, crafted dims like 2^31 x 2^30 wrap the 8*n length check and
// panic the allocation instead of returning 400.
const maxWireDim = 1 << 16

// validateImageWire checks dims and decodes the base64 payload, returning
// the raw little-endian sample bytes (identical to floatBytes of the
// decoded image). The handlers hash these directly for cache keys, so a
// cache hit never pays the float64 materialisation — imageFromRaw runs
// only on a miss.
func validateImageWire(w ImageWire) ([]byte, error) {
	if w.H <= 0 || w.W <= 0 || w.H > maxWireDim || w.W > maxWireDim || (w.C != 1 && w.C != 3) {
		return nil, fmt.Errorf("server: invalid image dims %dx%dx%d", w.H, w.W, w.C)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Pix)
	if err != nil {
		return nil, fmt.Errorf("server: image pixel data: %w", err)
	}
	n := w.H * w.W * w.C
	if len(raw) != 8*n {
		return nil, fmt.Errorf("server: image pixel data is %d bytes, want %d (%d float64 samples)", len(raw), 8*n, n)
	}
	return raw, nil
}

// imageFromRaw materialises the image from validated raw sample bytes.
func imageFromRaw(w ImageWire, raw []byte) *sensor.Image {
	im := sensor.NewImage(w.H, w.W, w.C)
	for i := range im.Pix {
		im.Pix[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return im
}

// EncodeFrame converts a frame readout to its wire form.
func EncodeFrame(f *sensor.Frame) FrameWire {
	return FrameWire{
		Rows: f.Rows, Cols: f.Cols,
		Codes: base64.StdEncoding.EncodeToString(f.Codes),
	}
}

// DecodeFrame validates and converts a wire frame back to a sensor.Frame.
func DecodeFrame(w FrameWire) (*sensor.Frame, error) {
	if w.Rows <= 0 || w.Cols <= 0 || w.Rows > maxWireDim || w.Cols > maxWireDim {
		return nil, fmt.Errorf("server: invalid frame dims %dx%d", w.Rows, w.Cols)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Codes)
	if err != nil {
		return nil, fmt.Errorf("server: frame code data: %w", err)
	}
	if len(raw) != w.Rows*w.Cols {
		return nil, fmt.Errorf("server: frame code data is %d bytes, want %d", len(raw), w.Rows*w.Cols)
	}
	return &sensor.Frame{Rows: w.Rows, Cols: w.Cols, Codes: raw}, nil
}

// Envelope is the shared request envelope of the v1 compute endpoints:
// the scene and the optional per-request seed every frame endpoint
// decodes through one path. It is embedded (flattened by encoding/json),
// so the wire field names are unchanged from the pre-envelope API —
// back-compat pinned by the golden fixtures under testdata/wire.
type Envelope struct {
	// Scene is the RGB input frame.
	Scene ImageWire `json:"scene"`
	// Seed overrides the server's base noise seed for this request when
	// non-nil.
	Seed *int64 `json:"seed,omitempty"`
}

// env exposes the envelope to the generic frame-endpoint constructor
// (endpoint.go) via method promotion.
func (e *Envelope) env() *Envelope { return e }

// CaptureRequest asks for one ADC-less sensor readout of a scene.
// Capture itself is noise-free; the envelope seed exists so every
// endpoint shares one request shape.
type CaptureRequest struct {
	Envelope
}

// NewCaptureRequest builds the request (the composite-literal form
// changed when the shared envelope landed; seed may be nil).
func NewCaptureRequest(scene ImageWire, seed *int64) CaptureRequest {
	return CaptureRequest{Envelope{Scene: scene, Seed: seed}}
}

// CaptureResponse carries the 4-bit frame readout.
type CaptureResponse struct {
	Frame FrameWire `json:"frame"`
	// Degraded flags a response served while the accelerator was running
	// degraded (retired rows on the digital fallback, or unrecovered ABFT
	// detections) — mirrored by the X-Lightator-Degraded header. Absent
	// on healthy responses, so pre-fault golden bodies are unchanged
	// (docs/FAULTS.md#the-wire-contract).
	Degraded bool `json:"degraded,omitempty"`
}

// CompressRequest asks for capture + compressive acquisition of a scene.
// The response is bit-identical to the facade's AcquireCompressedBatch on
// a single-scene batch under the effective seed, no matter how the server
// micro-batches the request.
type CompressRequest struct {
	Envelope
}

// NewCompressRequest builds the request; seed may be nil.
func NewCompressRequest(scene ImageWire, seed *int64) CompressRequest {
	return CompressRequest{Envelope{Scene: scene, Seed: seed}}
}

// CompressResponse carries the compressed activation plane.
type CompressResponse struct {
	Image ImageWire `json:"image"`
	// Degraded flags degraded service (see CaptureResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// MatVecRequest asks for one optical matrix-vector product. Weights are
// row-major with entries in [-1,1]; activations in [0,1].
type MatVecRequest struct {
	Weights     [][]float64 `json:"weights"`
	Activations []float64   `json:"activations"`
	Seed        *int64      `json:"seed,omitempty"`
}

// MatVecResponse carries the analog MAC results.
type MatVecResponse struct {
	Output []float64 `json:"output"`
	// Degraded flags degraded service (see CaptureResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// ProcessRequest asks for capture + compressive acquisition + one
// registered compressed-domain kernel (see /v1/kernels for the registry).
// The response is bit-identical to the facade's ProcessCompressed under
// the effective seed, no matter how the server micro-batches the request.
type ProcessRequest struct {
	Envelope
	Kernel string `json:"kernel"`
}

// NewProcessRequest builds the request; seed may be nil.
func NewProcessRequest(scene ImageWire, kernel string, seed *int64) ProcessRequest {
	return ProcessRequest{Envelope: Envelope{Scene: scene, Seed: seed}, Kernel: kernel}
}

// ProcessResponse carries the kernel's output plane. Samples may lie
// outside [0,1] — e.g. signed edge responses; the codec is range-agnostic.
type ProcessResponse struct {
	Plane ImageWire `json:"plane"`
	// Degraded flags degraded service (see CaptureResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// InferRequest asks for compressed-domain CNN inference by a registered
// model (see /v1/models for the registry). Exactly one of Scene and
// Plane must be set: a Scene runs the full capture + CA + inference
// pipeline (micro-batched); a Plane is a pre-compressed CA measurement
// plane fed straight to the model (single channel, the dims /v1/models
// reports). Scene responses are bit-identical to the facade's Infer
// under the effective seed, no matter how the server micro-batches the
// request; Plane responses match InferPlane.
type InferRequest struct {
	// The embedded envelope supplies the seed; its Scene field is
	// shadowed by the optional pointer below (encoding/json resolves
	// the name conflict in favour of the shallower field, keeping the
	// wire shape identical to the pre-envelope API).
	Envelope
	Scene *ImageWire `json:"scene,omitempty"`
	Plane *ImageWire `json:"plane,omitempty"`
	Model string     `json:"model"`
}

// InferResponse carries the logits and the top-1 class.
type InferResponse struct {
	Model  string    `json:"model"`
	Logits []float64 `json:"logits"`
	Class  int       `json:"class"`
	// Degraded flags degraded service (see CaptureResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// ModelInfo describes one registered compressed-domain inference model.
type ModelInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// InputH and InputW are the CA measurement-plane dims every request
	// plane must match (scenes are compressed down to them).
	InputH  int `json:"input_h"`
	InputW  int `json:"input_w"`
	Classes int `json:"classes"`
	// ReferenceAgreement is the measured optical-vs-digital-reference
	// top-1 agreement over a structured-scene sweep at server
	// construction (the fidelity contract cmd/benchdiff gates; 1.0 =
	// every sweep frame classified identically). Omitted when the server
	// was built with agreement measurement disabled.
	ReferenceAgreement *float64 `json:"reference_agreement,omitempty"`
}

// ModelsResponse lists the model registry (GET /v1/models), sorted by
// name.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// KernelInfo describes one registered compressed-domain kernel.
type KernelInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// KernelsResponse lists the kernel registry (GET /v1/kernels), sorted by
// name.
type KernelsResponse struct {
	Kernels []KernelInfo `json:"kernels"`
}

// SimulateRequest names a built-in descriptor model for the architecture
// simulator.
type SimulateRequest struct {
	Model string `json:"model"`
}

// ErrorResponse is the body of every non-2xx response and the shape of
// in-stream session error records: a stable machine-readable code (see
// the table in docs/API.md), a human message, and optional detail. The
// legacy "error" string (the pre-v1 body) mirrors message+detail so old
// clients keep decoding.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
	Error   string `json:"error"`
}

// SessionRequest opens a streaming session (POST /v1/session): a
// persistent seed chain plus per-frame compute configuration. Frame i
// of the session is processed exactly as a per-frame request with seed
// DeriveSeed(seed, i) — see docs/API.md#sessions.
type SessionRequest struct {
	// Kind selects the per-frame computation: "compress", "process" or
	// "infer".
	Kind string `json:"kind"`
	// Kernel names the compressed-domain kernel (kind "process").
	Kernel string `json:"kernel,omitempty"`
	// Model names the inference model (kind "infer").
	Model string `json:"model,omitempty"`
	// Seed overrides the server's base seed as the session seed.
	Seed *int64 `json:"seed,omitempty"`
	// Delta tunes temporal reuse; nil takes the defaults.
	Delta *DeltaWire `json:"delta,omitempty"`
	// Window overrides the in-flight frame window (backpressure bound).
	Window int `json:"window,omitempty"`
	// IdleTimeoutMS overrides the server's idle expiry for this session.
	IdleTimeoutMS int64 `json:"idle_timeout_ms,omitempty"`
}

// DeltaWire is the wire form of the temporal-reuse configuration.
type DeltaWire struct {
	// Disable turns reuse off (it is also off automatically in noisy
	// fidelity, where stale results would not be bit-identical).
	Disable bool `json:"disable,omitempty"`
	// Block is the diff-grid block side over the compressed plane
	// (default 8).
	Block int `json:"block,omitempty"`
	// Threshold is the per-sample absolute change that marks a block
	// dirty. 0 (the default) reuses only bit-identical blocks and keeps
	// streamed bytes exactly equal to per-frame recompute; larger values
	// are lossy.
	Threshold float64 `json:"threshold,omitempty"`
}

// SessionResponse describes an opened session with every knob resolved.
type SessionResponse struct {
	ID            string    `json:"id"`
	Kind          string    `json:"kind"`
	Kernel        string    `json:"kernel,omitempty"`
	Model         string    `json:"model,omitempty"`
	Seed          int64     `json:"seed"`
	Window        int       `json:"window"`
	IdleTimeoutMS int64     `json:"idle_timeout_ms"`
	Delta         DeltaWire `json:"delta"`
	// DeltaActive reports whether temporal reuse is actually on (false
	// in noisy fidelity or for compress sessions even when not disabled).
	DeltaActive bool `json:"delta_active"`
}

// SessionFrame is one input line of the NDJSON frame stream
// (POST /v1/session/{id}/frames).
type SessionFrame struct {
	Scene ImageWire `json:"scene"`
}

// SessionResult is one output line of the NDJSON frame stream, emitted
// in frame order. Exactly one payload field is set per the session
// kind; its bytes are identical to the corresponding per-frame endpoint
// response under seed DeriveSeed(sessionSeed, index). A stream-fatal
// condition (drain, session closed, malformed input line) is reported
// as a final record carrying only Error, then the stream ends.
type SessionResult struct {
	Index int `json:"index"`
	// Image is the CA measurement plane (kind "compress").
	Image *ImageWire `json:"image,omitempty"`
	// Plane is the kernel output (kind "process").
	Plane *ImageWire `json:"plane,omitempty"`
	// Logits and Class are the inference output (kind "infer").
	Logits []float64 `json:"logits,omitempty"`
	Class  *int      `json:"class,omitempty"`
	// BlocksTotal and BlocksReused are the frame's compute-unit count
	// and how many were carried forward from the previous frame.
	BlocksTotal  int `json:"blocks_total"`
	BlocksReused int `json:"blocks_reused"`
	// Error is set on per-frame failures (the frame still consumed its
	// seed-chain index) and on stream-fatal records (index -1).
	Error *ErrorResponse `json:"error,omitempty"`
	// Degraded flags a frame served while the accelerator was degraded
	// (see CaptureResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// SessionSummary is the trailing NDJSON record of a cleanly-finished
// frame stream.
type SessionSummary struct {
	Done  bool          `json:"done"`
	Stats session.Stats `json:"stats"`
}

// HealthzResponse is the liveness body (GET /healthz): always served
// with 200 — degradation is reported, not fatal (docs/FAULTS.md).
type HealthzResponse struct {
	// Status is "ok", "degraded" or "draining" (draining wins: it is the
	// terminal state an operator acts on).
	Status   string `json:"status"`
	Inflight int64  `json:"inflight"`
	// Degraded reports whether any optical component is serving degraded
	// output; Failing lists those components' labels, sorted.
	Degraded bool     `json:"degraded"`
	Failing  []string `json:"failing,omitempty"`
}

// SessionStatsResponse reports a session's cumulative counters
// (GET /v1/session/{id}, and the DELETE response).
type SessionStatsResponse struct {
	ID    string        `json:"id"`
	Kind  string        `json:"kind"`
	Stats session.Stats `json:"stats"`
}
