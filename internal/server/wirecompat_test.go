// Wire-compatibility gate: the golden fixtures under testdata/wire/
// are committed request and response bodies from released wire shapes.
// Every fixture must keep strict-decoding (DisallowUnknownFields) into
// the current v1 types — renaming or dropping a wire field turns the
// old name into an unknown field and fails this test, which CI runs on
// every change (make wirecompat). New wire shapes get a fixture here
// the moment they ship.
package server_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lightator/internal/server"
)

// wireFixtures maps each golden body to a fresh decode target plus a
// spot check that load-bearing fields actually landed (a renamed field
// with a stale json tag would otherwise decode to a zero value).
var wireFixtures = map[string]struct {
	target func() any
	check  func(t *testing.T, v any)
}{
	"capture_request.json": {
		target: func() any { return &server.CaptureRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.CaptureRequest)
			if r.Scene.H != 2 || r.Scene.C != 3 || r.Seed == nil || *r.Seed != 7 {
				t.Errorf("capture request lost fields: %+v", r)
			}
		},
	},
	"compress_request.json": {
		target: func() any { return &server.CompressRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.CompressRequest)
			if r.Scene.H != 2 || r.Seed == nil || *r.Seed != 7 {
				t.Errorf("compress request lost fields: %+v", r)
			}
		},
	},
	"process_request.json": {
		target: func() any { return &server.ProcessRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.ProcessRequest)
			if r.Scene.H != 2 || r.Kernel != "edge" || r.Seed == nil || *r.Seed != 7 {
				t.Errorf("process request lost fields: %+v", r)
			}
		},
	},
	"infer_scene_request.json": {
		target: func() any { return &server.InferRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.InferRequest)
			if r.Scene == nil || r.Scene.H != 2 || r.Model != "tiny-cnn" || r.Seed == nil || *r.Seed != 7 {
				t.Errorf("infer scene request lost fields: %+v", r)
			}
		},
	},
	"infer_plane_request.json": {
		target: func() any { return &server.InferRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.InferRequest)
			if r.Plane == nil || r.Plane.C != 1 || r.Scene != nil || r.Model != "tiny-cnn" {
				t.Errorf("infer plane request lost fields: %+v", r)
			}
		},
	},
	"matvec_request.json": {
		target: func() any { return &server.MatVecRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.MatVecRequest)
			if len(r.Weights) != 2 || len(r.Activations) != 2 || r.Seed == nil || *r.Seed != 3 {
				t.Errorf("matvec request lost fields: %+v", r)
			}
		},
	},
	"session_request.json": {
		target: func() any { return &server.SessionRequest{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.SessionRequest)
			if r.Kind != "process" || r.Kernel != "edge" || r.Seed == nil || *r.Seed != 11 ||
				r.Delta == nil || r.Delta.Block != 8 || r.Delta.Threshold != 0.5 ||
				r.Window != 4 || r.IdleTimeoutMS != 30000 {
				t.Errorf("session request lost fields: %+v", r)
			}
		},
	},
	"session_frame.json": {
		target: func() any { return &server.SessionFrame{} },
		check: func(t *testing.T, v any) {
			if f := v.(*server.SessionFrame); f.Scene.H != 2 {
				t.Errorf("session frame lost fields: %+v", f)
			}
		},
	},
	"capture_response.json": {
		target: func() any { return &server.CaptureResponse{} },
		check: func(t *testing.T, v any) {
			if r := v.(*server.CaptureResponse); r.Frame.Rows != 2 || r.Frame.Codes == "" {
				t.Errorf("capture response lost fields: %+v", r)
			}
		},
	},
	"compress_response.json": {
		target: func() any { return &server.CompressResponse{} },
		check: func(t *testing.T, v any) {
			if r := v.(*server.CompressResponse); r.Image.H != 2 || r.Image.Pix == "" {
				t.Errorf("compress response lost fields: %+v", r)
			}
		},
	},
	"process_response.json": {
		target: func() any { return &server.ProcessResponse{} },
		check: func(t *testing.T, v any) {
			if r := v.(*server.ProcessResponse); r.Plane.H != 2 || r.Plane.Pix == "" {
				t.Errorf("process response lost fields: %+v", r)
			}
		},
	},
	"infer_response.json": {
		target: func() any { return &server.InferResponse{} },
		check: func(t *testing.T, v any) {
			if r := v.(*server.InferResponse); r.Model != "tiny-cnn" || len(r.Logits) != 2 || r.Class != 1 {
				t.Errorf("infer response lost fields: %+v", r)
			}
		},
	},
	"error_response.json": {
		target: func() any { return &server.ErrorResponse{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.ErrorResponse)
			if r.Code != "bad_request" || r.Message == "" || r.Detail == "" || r.Error == "" {
				t.Errorf("error response lost fields: %+v", r)
			}
		},
	},
	"error_deadline_exceeded.json": {
		target: func() any { return &server.ErrorResponse{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.ErrorResponse)
			if r.Code != "deadline_exceeded" || r.Message == "" || r.Error == "" {
				t.Errorf("deadline error response lost fields: %+v", r)
			}
		},
	},
	"error_degraded_unavailable.json": {
		target: func() any { return &server.ErrorResponse{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.ErrorResponse)
			if r.Code != "degraded_unavailable" || r.Message == "" || r.Error == "" {
				t.Errorf("degraded error response lost fields: %+v", r)
			}
		},
	},
	"error_shed_overload.json": {
		target: func() any { return &server.ErrorResponse{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.ErrorResponse)
			if r.Code != "shed_overload" || r.Message == "" || r.Error == "" {
				t.Errorf("shed error response lost fields: %+v", r)
			}
		},
	},
	"capture_response_degraded.json": {
		// A degraded-flagged response: the flag must stay decodable, and
		// (being omitempty) must never disturb pre-fault golden bodies.
		target: func() any { return &server.CaptureResponse{} },
		check: func(t *testing.T, v any) {
			r := v.(*server.CaptureResponse)
			if r.Frame.Rows != 2 || !r.Degraded {
				t.Errorf("degraded capture response lost fields: %+v", r)
			}
		},
	},
	"error_response_legacy.json": {
		// The pre-structured shape: just {"error": "..."} — old bodies
		// (and old clients' expectations) must survive the new fields.
		target: func() any { return &server.ErrorResponse{} },
		check: func(t *testing.T, v any) {
			if r := v.(*server.ErrorResponse); r.Error == "" {
				t.Errorf("legacy error response lost fields: %+v", r)
			}
		},
	},
}

func TestWireCompat(t *testing.T) {
	dir := filepath.Join("testdata", "wire")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		fix, ok := wireFixtures[e.Name()]
		if !ok {
			t.Errorf("fixture %s has no registered decode target", e.Name())
			continue
		}
		seen[e.Name()] = true
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		v := fix.target()
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			t.Errorf("%s no longer decodes against the current wire types: %v", e.Name(), err)
			continue
		}
		fix.check(t, v)
	}
	for name := range wireFixtures {
		if !seen[name] {
			t.Errorf("registered fixture %s is missing from %s", name, dir)
		}
	}
}
