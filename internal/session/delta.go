// Temporal delta reuse in the compressed domain: consecutive CA
// measurement planes of a video stream are diffed on a block grid, and
// kernel/inference work runs only where measurements actually changed.
//
// Soundness rests on two established properties. First, deterministic
// fidelities (Ideal, Physical) are seed-independent — the same property
// that lets the response cache omit seeds from its keys — so a result
// computed for frame i-1 is bit-identical to what frame i would compute
// over the same samples, despite the per-frame seed chain. Second, a
// WindowedOp kernel's window output depends only on its own input
// rectangle, so with an exact threshold (0), carrying forward windows
// whose receptive fields saw no change reproduces a full Apply
// bit-for-bit. A non-zero threshold deliberately trades that exactness
// for more reuse and is an explicit client opt-in.
package session

import (
	"lightator/internal/kernels"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

// DeltaConfig tunes the temporal reuse engine.
type DeltaConfig struct {
	// Disable turns reuse off: every frame recomputes fully. Reuse is
	// also forced off in non-deterministic fidelities, where stale
	// results would not be bit-identical.
	Disable bool
	// Block is the diff-grid block side over the compressed plane
	// (default 8). A block is dirty when any of its samples moved by
	// more than Threshold against the previous frame.
	Block int
	// Threshold is the per-sample absolute change that marks a block
	// dirty. The default 0 reuses only bit-identical blocks, which keeps
	// streamed output bytes exactly equal to per-frame recompute; larger
	// values are lossy.
	Threshold float64
}

// withDefaults resolves zero values.
func (c DeltaConfig) withDefaults() DeltaConfig {
	if c.Block <= 0 {
		c.Block = 8
	}
	if c.Threshold < 0 {
		c.Threshold = 0
	}
	return c
}

// deltaEngine holds the previous frame's plane and results. It is owned
// by the session's single ordered emitter, so it needs no locking.
type deltaEngine struct {
	cfg     DeltaConfig
	enabled bool

	prevPlane  *sensor.Image
	prevOut    *sensor.Image
	prevLogits []float64
}

// dirtyBlocks diffs cur against prev on the block grid, returning the
// per-block dirty flags (row-major over the bh x bw grid) and how many
// blocks are dirty. Caller guarantees matching dims.
func (d *deltaEngine) dirtyBlocks(cur, prev *sensor.Image) (dirty []bool, bh, bw, n int) {
	b := d.cfg.Block
	bh = (cur.H + b - 1) / b
	bw = (cur.W + b - 1) / b
	dirty = make([]bool, bh*bw)
	for y := 0; y < cur.H; y++ {
		by := y / b
		row := y * cur.W
		for x := 0; x < cur.W; x++ {
			diff := cur.Pix[row+x] - prev.Pix[row+x]
			if diff > d.cfg.Threshold || diff < -d.cfg.Threshold {
				j := by*bw + x/b
				if !dirty[j] {
					dirty[j] = true
					n++
				}
			}
		}
	}
	return dirty, bh, bw, n
}

// selectWindows marks the kernel windows whose (clipped) receptive
// field touches a dirty diff block, returning the selection and its
// cardinality.
func (d *deltaEngine) selectWindows(wk kernels.WindowedOp, plane *sensor.Image, dirty []bool, bh, bw int) ([]bool, int, error) {
	wh, ww, err := wk.Windows(plane.H, plane.W)
	if err != nil {
		return nil, 0, err
	}
	b := d.cfg.Block
	sel := make([]bool, wh*ww)
	n := 0
	for wy := 0; wy < wh; wy++ {
		for wx := 0; wx < ww; wx++ {
			y0, x0, y1, x1 := wk.WindowInput(wy, wx)
			if y0 < 0 {
				y0 = 0
			}
			if x0 < 0 {
				x0 = 0
			}
			if y1 > plane.H {
				y1 = plane.H
			}
			if x1 > plane.W {
				x1 = plane.W
			}
		scan:
			for by := y0 / b; by <= (y1-1)/b && by < bh; by++ {
				for bx := x0 / b; bx <= (x1-1)/b && bx < bw; bx++ {
					if dirty[by*bw+bx] {
						sel[wy*ww+wx] = true
						n++
						break scan
					}
				}
			}
		}
	}
	return sel, n, nil
}

// process runs the kernel stage for one ordered frame, reusing window
// results from the previous frame where the compressed plane is static.
// It returns the output plane plus the frame's reuse accounting: units
// is the frame's total compute-unit count (kernel windows for windowed
// kernels, 1 otherwise) and reused how many of them were carried
// forward instead of recomputed.
func (d *deltaEngine) process(kern kernels.Kernel, plane *sensor.Image, kernelSeed int64, workers int) (out *sensor.Image, reused, units int, err error) {
	wk, windowed := kern.(kernels.WindowedOp)
	units = 1
	var wh, ww int
	if windowed {
		if wh, ww, err = wk.Windows(plane.H, plane.W); err != nil {
			return nil, 0, 0, err
		}
		units = wh * ww
	}
	fresh := !d.enabled || d.prevPlane == nil || d.prevOut == nil ||
		d.prevPlane.H != plane.H || d.prevPlane.W != plane.W
	if fresh {
		out, err = kern.Apply(plane, kernelSeed, workers)
		if err != nil {
			return nil, 0, 0, err
		}
		d.remember(plane, out, nil)
		return out, 0, units, nil
	}
	dirty, bh, bw, nDirty := d.dirtyBlocks(plane, d.prevPlane)
	if nDirty == 0 {
		// Fully static frame: the previous output is the answer for any
		// kernel shape. Results are never mutated after publication, so
		// sharing the plane across frames is safe.
		d.remember(plane, d.prevOut, nil)
		return d.prevOut, units, units, nil
	}
	if !windowed {
		// Global operators (iterative solvers) have no per-window
		// locality: any change recomputes the whole plane.
		out, err = kern.Apply(plane, kernelSeed, workers)
		if err != nil {
			return nil, 0, 0, err
		}
		d.remember(plane, out, nil)
		return out, 0, units, nil
	}
	sel, nSel, err := d.selectWindows(wk, plane, dirty, bh, bw)
	if err != nil {
		return nil, 0, 0, err
	}
	// Start from the previous output and recompute only touched windows.
	out = d.prevOut.Clone()
	if err := wk.ApplyWindows(out, plane, kernelSeed, workers, sel); err != nil {
		return nil, 0, 0, err
	}
	d.remember(plane, out, nil)
	return out, units - nSel, units, nil
}

// infer runs the inference stage for one ordered frame. Dense layers
// make model output global over the plane, so reuse is all-or-nothing:
// a fully static plane carries the previous logits forward, any change
// recomputes.
func (d *deltaEngine) infer(model pipeline.InferModel, plane *sensor.Image, inferSeed int64, workers int) (logits []float64, reused, units int, err error) {
	units = 1
	fresh := !d.enabled || d.prevPlane == nil || d.prevLogits == nil ||
		d.prevPlane.H != plane.H || d.prevPlane.W != plane.W
	if !fresh {
		if _, _, _, nDirty := d.dirtyBlocks(plane, d.prevPlane); nDirty == 0 {
			d.remember(plane, nil, d.prevLogits)
			return d.prevLogits, 1, 1, nil
		}
	}
	logits, err = model.Apply(plane, inferSeed, workers)
	if err != nil {
		return nil, 0, 0, err
	}
	d.remember(plane, nil, logits)
	return logits, 0, units, nil
}

// remember retains one frame's plane and results as the next frame's
// reuse source.
func (d *deltaEngine) remember(plane, out *sensor.Image, logits []float64) {
	d.prevPlane = plane
	d.prevOut = out
	d.prevLogits = logits
}
