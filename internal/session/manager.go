package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLimit means the registry is at its open-session cap.
var ErrLimit = errors.New("session: open-session limit reached")

// ManagerConfig tunes the session registry.
type ManagerConfig struct {
	// MaxSessions bounds concurrently open sessions (default 64).
	MaxSessions int
	// IdleTimeout expires sessions with no activity (default 60s);
	// per-session Config.IdleTimeout overrides it. Negative disables
	// expiry.
	IdleTimeout time.Duration
	// SweepEvery is the expiry check period (default IdleTimeout/4,
	// clamped to [10ms, 5s]).
	SweepEvery time.Duration
}

// withDefaults resolves zero values.
func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleTimeout / 4
		if c.SweepEvery < 10*time.Millisecond {
			c.SweepEvery = 10 * time.Millisecond
		}
		if c.SweepEvery > 5*time.Second {
			c.SweepEvery = 5 * time.Second
		}
	}
	return c
}

// ManagerStats is the registry's cumulative accounting, aggregated over
// open and already-closed sessions.
type ManagerStats struct {
	Open         int64 `json:"open"`
	Opened       int64 `json:"opened_total"`
	Closed       int64 `json:"closed_total"`
	Expired      int64 `json:"expired_total"`
	Frames       int64 `json:"frames_total"`
	BlocksTotal  int64 `json:"blocks_total"`
	BlocksReused int64 `json:"blocks_reused_total"`
	// PerSession carries each open session's reuse counters, keyed by id.
	PerSession map[string]Stats `json:"per_session,omitempty"`
}

// Manager owns the live session registry: id allocation, the session
// cap, idle expiry, and drain.
type Manager struct {
	cfg ManagerConfig

	mu       sync.Mutex
	sessions map[string]*Session
	draining bool
	// retired accumulates counters of sessions that have closed, so the
	// aggregate series in /metrics never go backwards.
	retired struct {
		frames, blocksTotal, blocksReused int64
	}
	opened, closed, expired int64

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewManager starts the registry and its idle sweeper.
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:       cfg,
		sessions:  make(map[string]*Session),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	go m.sweep()
	return m
}

// newID mints an unguessable session handle.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// constant-prefix counter would risk collisions, so panic loudly.
		panic(fmt.Sprintf("session: id entropy unavailable: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Open validates cfg, assigns an id, and registers the session.
func (m *Manager) Open(cfg Config) (*Session, error) {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = m.cfg.IdleTimeout
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrClosed
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("session: limit of %d open sessions reached: %w", m.cfg.MaxSessions, ErrLimit)
	}
	id := newID()
	for m.sessions[id] != nil {
		id = newID()
	}
	s, err := New(id, cfg)
	if err != nil {
		return nil, err
	}
	m.sessions[id] = s
	m.opened++
	return s, nil
}

// Get returns the open session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Close closes and deregisters a session, returning it (for final
// stats) when it was open.
func (m *Manager) Close(id string) (*Session, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.closed++
		m.retire(s)
	}
	m.mu.Unlock()
	if ok {
		s.Close()
	}
	return s, ok
}

// retire folds a departing session's counters into the aggregate;
// caller holds mu.
func (m *Manager) retire(s *Session) {
	st := s.Stats()
	m.retired.frames += st.Frames
	m.retired.blocksTotal += st.BlocksTotal
	m.retired.blocksReused += st.BlocksReused
}

// sweep expires idle sessions until Drain.
func (m *Manager) sweep() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case now := <-t.C:
			var expired []*Session
			m.mu.Lock()
			for id, s := range m.sessions {
				idle := s.Config().IdleTimeout
				if idle < 0 {
					continue
				}
				if s.Idle(now, idle) {
					delete(m.sessions, id)
					m.expired++
					m.retire(s)
					expired = append(expired, s)
				}
			}
			m.mu.Unlock()
			for _, s := range expired {
				s.Close()
			}
		}
	}
}

// Drain closes every session, refuses new ones, and waits for active
// streams to finish their in-flight frames. Idempotent.
func (m *Manager) Drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		<-m.sweepDone
		return
	}
	m.draining = true
	open := make([]*Session, 0, len(m.sessions))
	for id, s := range m.sessions {
		delete(m.sessions, id)
		m.closed++
		m.retire(s)
		open = append(open, s)
	}
	m.mu.Unlock()
	close(m.stopSweep)
	for _, s := range open {
		s.Close()
	}
	for _, s := range open {
		s.streams.Wait()
	}
	<-m.sweepDone
}

// Stats aggregates the registry's counters: open-session counters are
// sampled live, closed ones come from the retirement tally.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	st := ManagerStats{
		Open:         int64(len(open)),
		Opened:       m.opened,
		Closed:       m.closed,
		Expired:      m.expired,
		Frames:       m.retired.frames,
		BlocksTotal:  m.retired.blocksTotal,
		BlocksReused: m.retired.blocksReused,
	}
	m.mu.Unlock()
	if len(open) > 0 {
		st.PerSession = make(map[string]Stats, len(open))
	}
	for _, s := range open {
		ss := s.Stats()
		st.PerSession[s.ID()] = ss
		st.Frames += ss.Frames
		st.BlocksTotal += ss.BlocksTotal
		st.BlocksReused += ss.BlocksReused
	}
	return st
}
