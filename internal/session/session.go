// Package session is Lightator's streaming video layer: persistent
// sessions that carry a per-session seed chain across frames, drive the
// shared capture+CA pipeline in streaming mode, and exploit inter-frame
// redundancy in the compressed domain (see delta.go).
//
// The determinism contract extends the serving layer's: session frame i
// is processed exactly as a per-frame facade/HTTP call with request
// seed DeriveSeed(sessionSeed, i) — streamed output bytes are identical
// to those per-frame calls at any worker count, for every fidelity.
// Temporal reuse preserves that bit-for-bit in deterministic fidelities
// (and is disabled elsewhere).
//
// Flow control is connection-level, not admission-level: a stream keeps
// at most Window frames in flight between producer and consumer. When
// the window is full the feeder stops pulling input, which propagates
// to the HTTP layer as a paused body read (TCP backpressure) instead of
// a 429.
package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

// Kind selects what a session computes per frame.
type Kind string

const (
	// KindCompress emits the CA measurement plane per frame.
	KindCompress Kind = "compress"
	// KindProcess emits a compressed-domain kernel's output per frame.
	KindProcess Kind = "process"
	// KindInfer emits class logits per frame.
	KindInfer Kind = "infer"
)

// Lifecycle sentinels.
var (
	// ErrBusy means a frame stream is already active on the session
	// (one at a time — the seed chain is strictly ordered).
	ErrBusy = errors.New("session: a frame stream is already active")
	// ErrClosed means the session was closed (explicitly, by idle
	// expiry, or by server drain).
	ErrClosed = errors.New("session: closed")
)

// Config assembles a session.
type Config struct {
	// Kind selects the per-frame computation.
	Kind Kind
	// Kernel is the compressed-domain operator for KindProcess.
	Kernel kernels.Kernel
	// Model is the inference model for KindInfer.
	Model pipeline.InferModel
	// Pipe is the capture+CA pipeline session frames flow through. It
	// may be shared with other sessions and endpoints — every frame
	// carries its own seed, so sharing never changes any output.
	Pipe *pipeline.Pipeline
	// Seed is the session seed; frame i is processed as a per-frame
	// call with request seed oc.DeriveSeed(Seed, i).
	Seed int64
	// Workers bounds the kernel/infer stage parallelism (the stage
	// contracts make the count unobservable in output bytes). Defaults
	// to runtime.NumCPU().
	Workers int
	// Window bounds in-flight frames per stream — the connection-level
	// backpressure window. Defaults to 8.
	Window int
	// Deterministic reports a noise-free fidelity; temporal reuse is
	// forced off when false (stale results would not be bit-identical
	// under per-frame noise seeds).
	Deterministic bool
	// Delta tunes temporal reuse.
	Delta DeltaConfig
	// IdleTimeout expires the session when it sits idle this long
	// (enforced by the Manager's sweeper; 0 means the manager default).
	IdleTimeout time.Duration
}

// Stats is a session's cumulative reuse accounting. Blocks counts reuse
// units: kernel windows for windowed kernels, whole-frame results
// otherwise (see docs/SERVER.md).
type Stats struct {
	Frames       int64   `json:"frames"`
	Errors       int64   `json:"errors"`
	BlocksTotal  int64   `json:"blocks_total"`
	BlocksReused int64   `json:"blocks_reused"`
	ReusedFrac   float64 `json:"blocks_reused_frac"`
}

// frac fills the derived ratio.
func (st Stats) frac() Stats {
	if st.BlocksTotal > 0 {
		st.ReusedFrac = float64(st.BlocksReused) / float64(st.BlocksTotal)
	}
	return st
}

// FrameResult is one ordered frame's session output.
type FrameResult struct {
	// Index is the frame's position in the session's seed chain.
	Index int
	// Compressed is the CA measurement plane.
	Compressed *sensor.Image
	// Plane is the kernel output (KindProcess only).
	Plane *sensor.Image
	// Logits is the inference output (KindInfer only).
	Logits []float64
	// Blocks and Reused are the frame's compute-unit total and how many
	// of them were carried forward from the previous frame.
	Blocks, Reused int
	// Err is the frame's pipeline error, if any; errored frames still
	// consume their index in the seed chain.
	Err error
}

// Session is one streaming session. Safe for concurrent use; at most
// one Stream runs at a time.
type Session struct {
	id  string
	cfg Config

	done      chan struct{}
	closeOnce sync.Once

	mu         sync.Mutex
	busy       bool
	closed     bool
	next       int // next frame index in the seed chain
	lastActive time.Time
	stats      Stats
	streams    sync.WaitGroup

	// delta is owned by the active stream's emitter (one at a time).
	delta deltaEngine
}

// New validates the configuration and builds a session. The id is the
// caller's handle (the Manager assigns its own).
func New(id string, cfg Config) (*Session, error) {
	if cfg.Pipe == nil {
		return nil, fmt.Errorf("session: needs a capture+CA pipeline")
	}
	switch cfg.Kind {
	case KindCompress:
	case KindProcess:
		if cfg.Kernel == nil {
			return nil, fmt.Errorf("session: kind %q needs a kernel", cfg.Kind)
		}
	case KindInfer:
		if cfg.Model == nil {
			return nil, fmt.Errorf("session: kind %q needs a model", cfg.Kind)
		}
	default:
		return nil, fmt.Errorf("session: unknown kind %q (want compress, process or infer)", cfg.Kind)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	cfg.Delta = cfg.Delta.withDefaults()
	s := &Session{
		id:         id,
		cfg:        cfg,
		done:       make(chan struct{}),
		lastActive: time.Now(),
	}
	s.delta.cfg = cfg.Delta
	// KindCompress always runs the full CA — there is nothing downstream
	// to reuse.
	s.delta.enabled = cfg.Deterministic && !cfg.Delta.Disable && cfg.Kind != KindCompress
	return s, nil
}

// ID returns the caller-assigned handle.
func (s *Session) ID() string { return s.id }

// Config returns the effective (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// DeltaEnabled reports whether temporal reuse is active.
func (s *Session) DeltaEnabled() bool { return s.delta.enabled }

// Stats snapshots the session's cumulative reuse accounting.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.frac()
}

// NextIndex returns the next frame's seed-chain index.
func (s *Session) NextIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// LastActive returns the last time the session opened, finished a
// stream, or emitted a frame.
func (s *Session) LastActive() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastActive
}

// Idle reports whether the session has been inactive past d at now.
// A session with an active stream is never idle.
func (s *Session) Idle(now time.Time, d time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.busy && !s.closed && now.Sub(s.lastActive) > d
}

// Close terminates the session: the active stream (if any) stops
// feeding new frames, finishes in-flight ones, and returns ErrClosed.
// Idempotent.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.done)
	})
}

// Done is closed when the session is closed.
func (s *Session) Done() <-chan struct{} { return s.done }

// Stream processes scenes from in, invoking emit once per frame in
// strict seed-chain order. It returns when in closes and every fed
// frame has been emitted, or early when ctx is cancelled, the session
// is closed (ErrClosed), or emit returns an error (returned verbatim).
// On every early return the stream still finishes frames already fed to
// the pipeline — the seed chain and delta state stay consistent, so a
// later Stream call resumes at the next index. Only one Stream runs at
// a time (ErrBusy otherwise).
func (s *Session) Stream(ctx context.Context, in <-chan *sensor.Image, emit func(FrameResult) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.busy {
		s.mu.Unlock()
		return ErrBusy
	}
	s.busy = true
	base := s.next
	s.streams.Add(1)
	s.mu.Unlock()
	fed := 0
	defer func() {
		s.mu.Lock()
		s.busy = false
		s.next = base + fed
		s.lastActive = time.Now()
		s.mu.Unlock()
		s.streams.Done()
	}()

	// The feeder pulls scenes only while a window slot is free; a full
	// window pauses input consumption, which the HTTP layer surfaces as
	// connection-level backpressure.
	pipeIn := make(chan pipeline.SeededScene)
	window := make(chan struct{}, s.cfg.Window)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		defer close(pipeIn)
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-s.done:
				return
			case window <- struct{}{}:
			}
			var scene *sensor.Image
			var ok bool
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-s.done:
				return
			case scene, ok = <-in:
				if !ok {
					return
				}
			}
			pipeIn <- pipeline.SeededScene{Seed: oc.DeriveSeed(s.cfg.Seed, base+i), Scene: scene}
			i++
		}
	}()

	out := s.cfg.Pipe.StreamSeeded(pipeIn)
	pending := make(map[int]pipeline.Result)
	nextIdx := 0
	var emitErr error
	for res := range out {
		pending[res.Index] = res
		for {
			r, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			fr := s.finishFrame(base+nextIdx, r)
			nextIdx++
			<-window
			if emitErr == nil {
				if err := emit(fr); err != nil {
					emitErr = err
					abort()
				}
			}
		}
	}
	// Every frame fed to the pipeline came back through the ordered
	// emitter, so nextIdx is exactly the count of consumed indices.
	fed = nextIdx
	if emitErr != nil {
		return emitErr
	}
	select {
	case <-s.done:
		return ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// finishFrame runs the ordered per-frame tail: the delta stage plus the
// kernel/infer stage, with the exact stage seeds the per-frame path
// would use, and the session's reuse accounting.
func (s *Session) finishFrame(idx int, res pipeline.Result) FrameResult {
	if res.Err != nil {
		s.mu.Lock()
		s.stats.Frames++
		s.stats.Errors++
		s.lastActive = time.Now()
		s.mu.Unlock()
		return FrameResult{Index: idx, Err: res.Err}
	}
	fr := FrameResult{Index: idx, Compressed: res.Compressed}
	frameSeed := pipeline.FrameSeed(oc.DeriveSeed(s.cfg.Seed, idx))
	var err error
	switch s.cfg.Kind {
	case KindCompress:
		fr.Blocks, fr.Reused = 1, 0
	case KindProcess:
		fr.Plane, fr.Reused, fr.Blocks, err = s.delta.process(
			s.cfg.Kernel, res.Compressed,
			pipeline.StageSeed(frameSeed, pipeline.StageKernel), s.cfg.Workers)
	case KindInfer:
		fr.Logits, fr.Reused, fr.Blocks, err = s.delta.infer(
			s.cfg.Model, res.Compressed,
			pipeline.StageSeed(frameSeed, pipeline.StageInfer), s.cfg.Workers)
	}
	if err != nil {
		fr.Err = err
	}
	s.mu.Lock()
	s.stats.Frames++
	if fr.Err != nil {
		s.stats.Errors++
	}
	s.stats.BlocksTotal += int64(fr.Blocks)
	s.stats.BlocksReused += int64(fr.Reused)
	s.lastActive = time.Now()
	s.mu.Unlock()
	return fr
}
