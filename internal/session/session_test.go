package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"lightator/internal/infer"
	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

const (
	testRows = 16
	testCols = 16
	testPool = 2
	sessSeed = 0x5eed
)

// harness bundles the shared capture+CA pipeline, a windowed kernel, a
// model, and per-frame reference pipelines (the calls the byte-identity
// contract quotes).
type harness struct {
	core    *oc.Core
	pipe    *pipeline.Pipeline // capture+CA (what sessions stream)
	kern    kernels.Kernel
	model   *infer.Model
	refProc *pipeline.Pipeline // capture+CA+kernel, serial
	refInf  *pipeline.Pipeline // capture+CA+infer, serial
}

func newHarness(t *testing.T, fid oc.Fidelity, workers int) *harness {
	t.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernels.NewBlockConv(core, "edge", "test edge",
		[][]float64{{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.NewEngine(core, testPool, testRows/testPool, testCols/testPool, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	model, err := eng.Model("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}
	newPipe := func(k kernels.Kernel, m *infer.Model, w int) *pipeline.Pipeline {
		cfg := pipeline.Config{Rows: testRows, Cols: testCols, Workers: w, Seed: 1, CAPool: testPool, Core: core, Kernel: k}
		if m != nil {
			cfg.Infer = m
		}
		p, err := pipeline.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return &harness{
		core:    core,
		pipe:    newPipe(nil, nil, workers),
		kern:    kern,
		model:   model,
		refProc: newPipe(kern, nil, 1),
		refInf:  newPipe(nil, model, 1),
	}
}

// perFrame runs the reference per-frame call for session frame idx.
func perFrame(t *testing.T, ref *pipeline.Pipeline, idx int, scene *sensor.Image) pipeline.Result {
	t.Helper()
	res, _, err := ref.RunSeeded([]pipeline.SeededScene{{Seed: oc.DeriveSeed(sessSeed, idx), Scene: scene}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("reference frame %d: %v", idx, res[0].Err)
	}
	return res[0]
}

// mostlyStatic builds n frames of a fixed background with a bright
// square that jumps every period frames — the streaming workload the
// delta engine targets.
func mostlyStatic(n, period int) []*sensor.Image {
	frames := make([]*sensor.Image, n)
	base := sensor.NewImage(testRows, testCols, 3)
	for i := range base.Pix {
		base.Pix[i] = float64(i%17) / 17
	}
	for f := range frames {
		s := base.Clone()
		pos := 0
		if period > 0 {
			pos = (f / period) % (testRows - 4)
		}
		for y := pos; y < pos+4; y++ {
			for x := pos; x < pos+4; x++ {
				for c := 0; c < 3; c++ {
					s.Pix[(y*testCols+x)*3+c] = 1
				}
			}
		}
		frames[f] = s
	}
	return frames
}

// run streams scenes through the session, collecting ordered results.
func run(t *testing.T, s *Session, scenes []*sensor.Image) ([]FrameResult, error) {
	t.Helper()
	in := make(chan *sensor.Image)
	go func() {
		defer close(in)
		for _, sc := range scenes {
			in <- sc
		}
	}()
	var out []FrameResult
	err := s.Stream(context.Background(), in, func(fr FrameResult) error {
		out = append(out, fr)
		return nil
	})
	return out, err
}

func samePix(t *testing.T, tag string, idx int, got, want *sensor.Image) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s frame %d: nil plane (got %v, want %v)", tag, idx, got, want)
	}
	if got.H != want.H || got.W != want.W {
		t.Fatalf("%s frame %d: dims %dx%d, want %dx%d", tag, idx, got.H, got.W, want.H, want.W)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("%s frame %d: sample %d differs: %g vs %g", tag, idx, i, got.Pix[i], want.Pix[i])
		}
	}
}

// TestStreamMatchesPerFrame is the tentpole contract: streamed output
// bytes are identical to the per-frame calls with request seed
// DeriveSeed(sessionSeed, i), for every kind, at 1 and 4 workers, in
// deterministic and noisy fidelities — with the delta engine live on
// the mostly-static workload (reuse must be unobservable in bytes).
func TestStreamMatchesPerFrame(t *testing.T) {
	scenes := mostlyStatic(10, 3)
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.Physical, oc.PhysicalNoisy} {
		for _, workers := range []int{1, 4} {
			t.Run(fid.String(), func(t *testing.T) {
				h := newHarness(t, fid, workers)
				det := fid != oc.PhysicalNoisy
				for _, kind := range []Kind{KindCompress, KindProcess, KindInfer} {
					s, err := New("t", Config{
						Kind: kind, Kernel: h.kern, Model: h.model, Pipe: h.pipe,
						Seed: sessSeed, Workers: workers, Deterministic: det,
					})
					if err != nil {
						t.Fatal(err)
					}
					got, err := run(t, s, scenes)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(scenes) {
						t.Fatalf("kind %s: %d results, want %d", kind, len(got), len(scenes))
					}
					for i, fr := range got {
						if fr.Err != nil {
							t.Fatalf("kind %s frame %d: %v", kind, i, fr.Err)
						}
						if fr.Index != i {
							t.Fatalf("kind %s: result %d has index %d", kind, i, fr.Index)
						}
						switch kind {
						case KindCompress:
							ref := perFrame(t, h.pipe, i, scenes[i])
							samePix(t, "compress", i, fr.Compressed, ref.Compressed)
						case KindProcess:
							ref := perFrame(t, h.refProc, i, scenes[i])
							samePix(t, "process", i, fr.Plane, ref.Processed)
						case KindInfer:
							ref := perFrame(t, h.refInf, i, scenes[i])
							if len(fr.Logits) != len(ref.Logits) {
								t.Fatalf("infer frame %d: %d logits, want %d", i, len(fr.Logits), len(ref.Logits))
							}
							for j := range ref.Logits {
								if fr.Logits[j] != ref.Logits[j] {
									t.Fatalf("infer frame %d: logit %d differs: %g vs %g", i, j, fr.Logits[j], ref.Logits[j])
								}
							}
						}
					}
					s.Close()
				}
			})
		}
	}
}

// TestDeltaCountersStatic: on a fully static stream every post-warmup
// window is reused, and the counters say so exactly.
func TestDeltaCountersStatic(t *testing.T) {
	const n = 6
	h := newHarness(t, oc.Physical, 2)
	s, err := New("t", Config{Kind: KindProcess, Kernel: h.kern, Pipe: h.pipe, Seed: sessSeed, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.DeltaEnabled() {
		t.Fatal("delta should be enabled for a deterministic process session")
	}
	if _, err := run(t, s, mostlyStatic(n, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// 16x16 sensor at pool 2 -> 8x8 plane; 3x3 stride-1 pad-1 conv ->
	// 64 windows per frame.
	const perFrameWindows = 64
	if st.BlocksTotal != n*perFrameWindows {
		t.Fatalf("blocks_total %d, want %d", st.BlocksTotal, n*perFrameWindows)
	}
	if st.BlocksReused != (n-1)*perFrameWindows {
		t.Fatalf("blocks_reused %d, want %d (all post-warmup windows)", st.BlocksReused, (n-1)*perFrameWindows)
	}
	want := float64(n-1) / float64(n)
	if st.ReusedFrac != want {
		t.Fatalf("blocks_reused_frac %g, want %g", st.ReusedFrac, want)
	}
}

// TestDeltaCountersMoving: a moving square reuses some but not all
// windows — partial recompute, not all-or-nothing.
func TestDeltaCountersMoving(t *testing.T) {
	h := newHarness(t, oc.Physical, 2)
	s, err := New("t", Config{Kind: KindProcess, Kernel: h.kern, Pipe: h.pipe, Seed: sessSeed, Deterministic: true, Delta: DeltaConfig{Block: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, s, mostlyStatic(8, 1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BlocksReused <= 0 {
		t.Fatalf("moving scene reused %d blocks, want > 0", st.BlocksReused)
	}
	if st.BlocksReused >= st.BlocksTotal-64 {
		t.Fatalf("moving scene reused %d of %d blocks — the change was not detected", st.BlocksReused, st.BlocksTotal)
	}
}

// TestDeltaOffNoisy: noisy fidelity forces reuse off — stale results
// would not be bit-identical under per-frame noise seeds.
func TestDeltaOffNoisy(t *testing.T) {
	h := newHarness(t, oc.PhysicalNoisy, 1)
	s, err := New("t", Config{Kind: KindProcess, Kernel: h.kern, Pipe: h.pipe, Seed: sessSeed, Deterministic: false})
	if err != nil {
		t.Fatal(err)
	}
	if s.DeltaEnabled() {
		t.Fatal("delta must be disabled in noisy fidelity")
	}
	if _, err := run(t, s, mostlyStatic(4, 0)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BlocksReused != 0 {
		t.Fatalf("noisy session reused %d blocks, want 0", st.BlocksReused)
	}
}

// TestSeedChainResume: a second Stream call continues the seed chain
// where the first left off — frame indices and bytes both.
func TestSeedChainResume(t *testing.T) {
	h := newHarness(t, oc.PhysicalNoisy, 2)
	s, err := New("t", Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: false})
	if err != nil {
		t.Fatal(err)
	}
	scenes := mostlyStatic(5, 1)
	first, err := run(t, s, scenes[:3])
	if err != nil {
		t.Fatal(err)
	}
	second, err := run(t, s, scenes[3:])
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NextIndex(); got != 5 {
		t.Fatalf("next index %d after 5 frames, want 5", got)
	}
	all := append(first, second...)
	for i, fr := range all {
		if fr.Index != i {
			t.Fatalf("result %d has index %d", i, fr.Index)
		}
		ref := perFrame(t, h.pipe, i, scenes[i])
		samePix(t, "resume", i, fr.Compressed, ref.Compressed)
	}
}

// TestBusyAndClosed: one stream at a time; closed sessions refuse new
// streams; Close mid-stream stops the feed and returns ErrClosed.
func TestBusyAndClosed(t *testing.T) {
	h := newHarness(t, oc.Physical, 1)
	s, err := New("t", Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *sensor.Image)
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- s.Stream(context.Background(), in, func(FrameResult) error {
			return nil
		})
	}()
	go func() {
		in <- mostlyStatic(1, 0)[0]
		close(started)
	}()
	<-started
	if err := s.Stream(context.Background(), nil, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("second stream: %v, want ErrBusy", err)
	}
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("closed mid-stream: %v, want ErrClosed", err)
	}
	if err := s.Stream(context.Background(), in, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream after close: %v, want ErrClosed", err)
	}
}

// TestContextCancel: cancelling the stream context stops the feed and
// reports the context error; the session survives for a later stream.
func TestContextCancel(t *testing.T) {
	h := newHarness(t, oc.Physical, 1)
	s, err := New("t", Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *sensor.Image)
	errc := make(chan error, 1)
	go func() {
		errc <- s.Stream(ctx, in, func(FrameResult) error { return nil })
	}()
	in <- mostlyStatic(1, 0)[0]
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream: %v, want context.Canceled", err)
	}
	if _, err := run(t, s, mostlyStatic(1, 0)); err != nil {
		t.Fatalf("stream after cancel: %v", err)
	}
}

// TestManagerLifecycle: cap enforcement, lookup, close, and aggregate
// counters that never go backwards when sessions retire.
func TestManagerLifecycle(t *testing.T) {
	h := newHarness(t, oc.Physical, 1)
	m := NewManager(ManagerConfig{MaxSessions: 2, IdleTimeout: -1})
	defer m.Drain()
	cfg := Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: true}
	a, err := m.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(cfg); !errors.Is(err, ErrLimit) {
		t.Fatalf("over-cap open: %v, want ErrLimit", err)
	}
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("open session not found")
	}
	if _, err := run(t, a, mostlyStatic(2, 0)); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	if before.Frames != 2 {
		t.Fatalf("aggregate frames %d, want 2", before.Frames)
	}
	if _, ok := m.Close(a.ID()); !ok {
		t.Fatal("close reported unknown session")
	}
	if _, ok := m.Get(a.ID()); ok {
		t.Fatal("closed session still resolvable")
	}
	after := m.Stats()
	if after.Frames != before.Frames {
		t.Fatalf("aggregate frames moved %d -> %d across retirement", before.Frames, after.Frames)
	}
	if after.Open != 1 || after.Opened != 2 || after.Closed != 1 {
		t.Fatalf("lifecycle counters open=%d opened=%d closed=%d, want 1/2/1", after.Open, after.Opened, after.Closed)
	}
}

// TestManagerIdleExpiry: idle sessions are swept; active ones are not.
func TestManagerIdleExpiry(t *testing.T) {
	h := newHarness(t, oc.Physical, 1)
	m := NewManager(ManagerConfig{IdleTimeout: 30 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer m.Drain()
	s, err := m.Open(Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(s.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("expired session not closed")
	}
	if st := m.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
}

// TestManagerDrain: drain closes every session, refuses new opens, and
// waits for active streams.
func TestManagerDrain(t *testing.T) {
	h := newHarness(t, oc.Physical, 1)
	m := NewManager(ManagerConfig{IdleTimeout: -1})
	cfg := Config{Kind: KindCompress, Pipe: h.pipe, Seed: sessSeed, Deterministic: true}
	s, err := m.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *sensor.Image)
	errc := make(chan error, 1)
	go func() {
		errc <- s.Stream(context.Background(), in, func(FrameResult) error { return nil })
	}()
	in <- mostlyStatic(1, 0)[0]
	m.Drain()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("drained stream: %v, want ErrClosed", err)
	}
	if _, err := m.Open(cfg); !errors.Is(err, ErrClosed) {
		t.Fatalf("open while draining: %v, want ErrClosed", err)
	}
	m.Drain() // idempotent
}
