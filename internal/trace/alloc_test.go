//go:build !race

package trace

import "testing"

// The observability layer must never regress the PR 5 zero-alloc
// hot-path contract: recording a trace into the ring, copying StageOps
// into a pipeline Result, and summing counts are all allocation-free.
// (The race detector instruments allocations, so like
// internal/oc/alloc_test.go these pins only run without -race; the
// non-race CI lane enforces them.)

func TestRingAddZeroAllocs(t *testing.T) {
	r := NewRing(32)
	tr := Trace{ID: "fixed", Endpoint: "process", EnergyJ: 1e-9}
	allocs := testing.AllocsPerRun(200, func() {
		r.Add(tr)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Add allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestStageOpsCopyAndTotalZeroAllocs(t *testing.T) {
	ops := StageOps{
		Capture:  OpCounts{ComparatorFires: 983040},
		Compress: OpCounts{MVMRows: 16384, ADCConversions: 16384, MRCoeffHolds: 65536},
	}
	var sink OpCounts
	allocs := testing.AllocsPerRun(200, func() {
		cp := ops // the per-frame Result assignment in internal/pipeline
		sink = cp.Total()
	})
	if allocs != 0 {
		t.Fatalf("StageOps copy+Total allocates %.1f allocs/op, want 0", allocs)
	}
	if sink.IsZero() {
		t.Fatal("sink unexpectedly zero")
	}
}

func TestNilRingAddZeroAllocs(t *testing.T) {
	var r *Ring // disabled tracing: must be free
	allocs := testing.AllocsPerRun(200, func() {
		r.Add(Trace{Endpoint: "capture"})
	})
	if allocs != 0 {
		t.Fatalf("nil Ring.Add allocates %.1f allocs/op, want 0", allocs)
	}
}
