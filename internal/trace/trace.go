// Package trace is the per-request observability substrate: analog op
// counts per pipeline stage, wall-time spans, and a fixed-capacity ring
// of completed request traces served by GET /debug/traces.
//
// The package is a std-lib-only leaf so every layer can import it:
// internal/kernels and internal/infer report their per-frame op counts
// through it, internal/pipeline aggregates those into per-stage
// StageOps, and internal/energy prices an OpCounts into modeled joules
// (see energy.Params.RequestEnergy).
//
// Op counts are modeled, not measured: they are derived analytically
// from the programmed shapes (matrix dimensions, window geometry,
// iteration counts), so recording them costs nothing on the hot path —
// a pipeline computes its StageOps once at construction and copies the
// value into every Result. See docs/OBSERVABILITY.md for the exact
// semantics of each counter.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// OpCounts tallies the analog work behind one request (or one stage of
// it). All counters are modeled from programmed shapes; see
// docs/OBSERVABILITY.md#span-op-counts for the derivations.
type OpCounts struct {
	// MVMRows counts optical row readouts: one per programmed-matrix row
	// per apply. Each is one compute cycle of the modeled clock.
	MVMRows int64 `json:"mvm_rows"`
	// DACSettles counts weight-DAC MR-cycle holds — matrix coefficients
	// held by runtime DACs, rows x cols per apply. Zero for pre-set
	// banks (the CA stage), whose coefficients are tuned once at
	// programming time rather than driven per cycle.
	DACSettles int64 `json:"dac_settles"`
	// ADCConversions counts output digitizations: one per optical row
	// readout outside the capture stage (capture digitizes through the
	// CRC comparator ladder instead).
	ADCConversions int64 `json:"adc_conversions"`
	// ComparatorFires counts CRC comparator evaluations during capture:
	// analog.NumComparators per pixel.
	ComparatorFires int64 `json:"comparator_fires"`
	// MRCoeffHolds counts microring coefficient-cycle holds across all
	// optical stages, including pre-set CA banks — the base for thermal
	// tuning and balanced-photodetector energy.
	MRCoeffHolds int64 `json:"mr_coeff_holds"`
	// ABFTChecks counts checksum-row verifications: the extra optical row
	// readout plus digital Σ-comparison the ABFT layer samples per apply.
	// Modeled like every other counter — applies divided by the matrix's
	// verification stride (see docs/FAULTS.md#abft).
	ABFTChecks int64 `json:"abft_checks,omitempty"`
}

// Add returns the element-wise sum.
func (c OpCounts) Add(o OpCounts) OpCounts {
	return OpCounts{
		MVMRows:         c.MVMRows + o.MVMRows,
		DACSettles:      c.DACSettles + o.DACSettles,
		ADCConversions:  c.ADCConversions + o.ADCConversions,
		ComparatorFires: c.ComparatorFires + o.ComparatorFires,
		MRCoeffHolds:    c.MRCoeffHolds + o.MRCoeffHolds,
		ABFTChecks:      c.ABFTChecks + o.ABFTChecks,
	}
}

// Scale returns the counts multiplied by n (n requests of this shape).
func (c OpCounts) Scale(n int64) OpCounts {
	return OpCounts{
		MVMRows:         c.MVMRows * n,
		DACSettles:      c.DACSettles * n,
		ADCConversions:  c.ADCConversions * n,
		ComparatorFires: c.ComparatorFires * n,
		MRCoeffHolds:    c.MRCoeffHolds * n,
		ABFTChecks:      c.ABFTChecks * n,
	}
}

// IsZero reports whether no op was counted.
func (c OpCounts) IsZero() bool { return c == OpCounts{} }

// String renders the counts in the compact key=value form used by the
// X-Lightator-Ops response header.
func (c OpCounts) String() string {
	s := fmt.Sprintf("mvm_rows=%d dac_settles=%d adc_conversions=%d comparator_fires=%d mr_coeff_holds=%d",
		c.MVMRows, c.DACSettles, c.ADCConversions, c.ComparatorFires, c.MRCoeffHolds)
	if c.ABFTChecks != 0 {
		s += fmt.Sprintf(" abft_checks=%d", c.ABFTChecks)
	}
	return s
}

// StageOps is a frame's op counts broken down by pipeline stage.
// Stages a pipeline does not run stay zero. The struct is a plain
// value: copying it into a pipeline Result allocates nothing.
type StageOps struct {
	Capture  OpCounts `json:"capture"`
	Compress OpCounts `json:"compress"`
	Kernel   OpCounts `json:"kernel"`
	Infer    OpCounts `json:"infer"`
	MatVec   OpCounts `json:"matvec"`
}

// Total sums the per-stage counts.
func (s StageOps) Total() OpCounts {
	return s.Capture.Add(s.Compress).Add(s.Kernel).Add(s.Infer).Add(s.MatVec)
}

// Span is one recorded pipeline stage: its wall time and the modeled
// analog op counts behind it.
type Span struct {
	Stage      string   `json:"stage"`
	DurationNS int64    `json:"duration_ns"`
	Ops        OpCounts `json:"ops"`
}

// Trace is one completed request as recorded in the debug ring.
type Trace struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	// Target is the kernel or model the request addressed, when any.
	Target     string    `json:"target,omitempty"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	CacheHit   bool      `json:"cache_hit,omitempty"`
	Spans      []Span    `json:"spans,omitempty"`
	// EnergyJ is the modeled energy of the request through the paper's
	// component model (energy.Params.RequestEnergy over the span ops).
	EnergyJ float64 `json:"energy_j"`
	// ModeledKFPSPerW is the throughput-per-watt a stream of identical
	// requests would sustain: 1/(1000 * EnergyJ).
	ModeledKFPSPerW float64 `json:"modeled_kfps_per_w,omitempty"`
}

// Ops sums the op counts over the trace's spans.
func (t Trace) Ops() OpCounts {
	var c OpCounts
	for _, s := range t.Spans {
		c = c.Add(s.Ops)
	}
	return c
}

// idState seeds request IDs from the process start time once, then
// advances a counter; NewID hashes the pair so IDs look opaque but cost
// one atomic add and no allocation beyond the returned string.
var idState = func() *atomic.Uint64 {
	var v atomic.Uint64
	v.Store(uint64(time.Now().UnixNano()))
	return &v
}()

// NewID returns a 16-hex-digit request ID, unique within the process
// and stable across restarts only by accident.
func NewID() string {
	x := idState.Add(1)
	// splitmix64 finalizer: decorrelates sequential counter values.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// Ring is a fixed-capacity buffer of the most recent traces, safe for
// concurrent use. A nil *Ring ignores adds and snapshots empty, so
// callers can leave tracing unconfigured without branching.
type Ring struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	total uint64
}

// NewRing returns a ring holding up to capacity traces; capacity <= 0
// returns nil (the no-op ring).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]Trace, capacity)}
}

// Add records a completed trace, evicting the oldest when full. The
// slot store reuses the preallocated buffer: steady-state adds allocate
// nothing beyond what the trace itself carries.
func (r *Ring) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Len reports how many traces the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.len()
}

func (r *Ring) len() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total reports how many traces have ever been added, including
// evicted ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the held traces oldest-first.
func (r *Ring) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.len()
	out := make([]Trace, 0, n)
	start := 0
	if r.total >= uint64(len(r.buf)) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
