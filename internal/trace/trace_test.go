package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestOpCountsAddScaleTotal(t *testing.T) {
	a := OpCounts{MVMRows: 1, DACSettles: 2, ADCConversions: 3, ComparatorFires: 4, MRCoeffHolds: 5}
	b := OpCounts{MVMRows: 10, DACSettles: 20, ADCConversions: 30, ComparatorFires: 40, MRCoeffHolds: 50}
	got := a.Add(b)
	want := OpCounts{MVMRows: 11, DACSettles: 22, ADCConversions: 33, ComparatorFires: 44, MRCoeffHolds: 55}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if s := a.Scale(3); s != (OpCounts{MVMRows: 3, DACSettles: 6, ADCConversions: 9, ComparatorFires: 12, MRCoeffHolds: 15}) {
		t.Fatalf("Scale(3) = %+v", s)
	}
	if !(OpCounts{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	so := StageOps{Capture: a, Infer: b}
	if so.Total() != want {
		t.Fatalf("StageOps.Total = %+v, want %+v", so.Total(), want)
	}
	for _, k := range []string{"mvm_rows=1", "dac_settles=2", "adc_conversions=3", "comparator_fires=4", "mr_coeff_holds=5"} {
		if !strings.Contains(a.String(), k) {
			t.Fatalf("String() = %q missing %q", a.String(), k)
		}
	}
}

func TestTraceOpsSumsSpans(t *testing.T) {
	tr := Trace{Spans: []Span{
		{Stage: "capture", Ops: OpCounts{ComparatorFires: 7}},
		{Stage: "compress", Ops: OpCounts{MVMRows: 2, ADCConversions: 2, MRCoeffHolds: 8}},
	}}
	got := tr.Ops()
	if got != (OpCounts{MVMRows: 2, ADCConversions: 2, ComparatorFires: 7, MRCoeffHolds: 8}) {
		t.Fatalf("Trace.Ops = %+v", got)
	}
}

func TestNewIDUniqueAndWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q not 16 hex digits", id)
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("id %q has non-hex rune %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Trace{Endpoint: string(rune('a' + i))})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	snap := r.Snapshot()
	var got []string
	for _, tr := range snap {
		got = append(got, tr.Endpoint)
	}
	if strings.Join(got, "") != "cde" {
		t.Fatalf("Snapshot order = %v, want oldest-first c d e", got)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Add(Trace{Endpoint: "x"})
	r.Add(Trace{Endpoint: "y"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Endpoint != "x" || snap[1].Endpoint != "y" {
		t.Fatalf("partial snapshot = %+v", snap)
	}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Add(Trace{}) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring not inert")
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("non-positive capacity should return the nil ring")
	}
}

func TestRingConcurrentAdds(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Trace{ID: NewID()})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
}
