package train

import (
	"testing"

	"lightator/internal/dataset"
	"lightator/internal/nn"
	"lightator/internal/oc"
)

// tinyQATNet is a minimal MLP with one activation quantizer — small
// enough to train in milliseconds, deep enough to exercise the
// microbatch gradient reduction and the external ActQuant calibration.
func tinyQATNet(aBits int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 28*28, 16),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", aBits),
		nn.NewDense("fc2", 16, 10),
	)
}

// trainedState trains the tiny net to completion with the given worker
// count and returns deep copies of every parameter plus the calibrated
// activation scales.
func trainedState(t *testing.T, workers int, analog bool) ([][]float64, []float64) {
	t.Helper()
	ds := dataset.NewDigits(96, 11)
	net := tinyQATNet(4)
	net.InitHe(5)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.QATEpochs = 2
	cfg.WBits = 4
	// Deliberately not a multiple of the microbatch granule, so the last
	// microbatch is short and the weighted reduction is exercised.
	cfg.BatchSize = 20
	cfg.Workers = workers
	cfg.Seed = 3
	cfg.Verbose = false
	if analog {
		core, err := oc.NewCore(4, 4, oc.Physical)
		if err != nil {
			t.Fatal(err)
		}
		cfg.AnalogCore = core
	}
	if _, err := Train(net, ds, cfg); err != nil {
		t.Fatal(err)
	}
	var params [][]float64
	for _, p := range net.Params() {
		params = append(params, append([]float64(nil), p.Data...))
	}
	var scales []float64
	for _, aq := range nn.ActQuants(net) {
		scales = append(scales, aq.Scale)
	}
	return params, scales
}

func requireIdenticalState(t *testing.T, workers int, wantP [][]float64, wantS []float64, gotP [][]float64, gotS []float64) {
	t.Helper()
	if len(gotP) != len(wantP) {
		t.Fatalf("workers=%d: %d params, want %d", workers, len(gotP), len(wantP))
	}
	for pi := range wantP {
		for i := range wantP[pi] {
			if gotP[pi][i] != wantP[pi][i] {
				t.Fatalf("workers=%d: param %d value %d diverged: %v vs %v",
					workers, pi, i, gotP[pi][i], wantP[pi][i])
			}
		}
	}
	for i := range wantS {
		if gotS[i] != wantS[i] {
			t.Fatalf("workers=%d: ActQuant scale %d diverged: %v vs %v", workers, i, gotS[i], wantS[i])
		}
	}
}

// TestTrainWorkerInvariance pins the determinism contract: the trained
// weights and calibrated activation scales are bit-identical for any
// worker count. This is the regression test for the old per-worker
// gradient partitioning and the worker-0-only ActQuant sync.
func TestTrainWorkerInvariance(t *testing.T) {
	refP, refS := trainedState(t, 1, false)
	if len(refS) != 1 || refS[0] <= 0 {
		t.Fatalf("QAT left the activation scale uncalibrated: %v", refS)
	}
	for _, workers := range []int{2, 4} {
		p, s := trainedState(t, workers, false)
		requireIdenticalState(t, workers, refP, refS, p, s)
	}
}

// TestTrainAnalogWorkerInvariance: crosstalk-in-the-loop QAT (the
// Physical analog forward) trains, changes the outcome versus plain grid
// QAT, and stays bit-identical across worker counts.
func TestTrainAnalogWorkerInvariance(t *testing.T) {
	refP, refS := trainedState(t, 1, true)
	if len(refS) != 1 || refS[0] <= 0 {
		t.Fatalf("analog QAT left the activation scale uncalibrated: %v", refS)
	}
	for _, workers := range []int{2, 4} {
		p, s := trainedState(t, workers, true)
		requireIdenticalState(t, workers, refP, refS, p, s)
	}
	// The analog forward must actually be in the loop: the trained
	// weights differ from the plain-QAT run somewhere.
	plainP, _ := trainedState(t, 1, false)
	differs := false
	for pi := range refP {
		for i := range refP[pi] {
			if refP[pi][i] != plainP[pi][i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("analog QAT produced bit-identical weights to plain QAT — core not in the loop")
	}
}
