// Package train implements the application-level training loop of the
// paper's evaluation framework (Fig. 7): plain SGD-with-momentum training
// of the float model followed by quantization-aware fine-tuning ("an
// additional six epochs of training employing quantization-aware
// techniques"). Training is data-parallel across worker goroutines that
// share weight storage and reduce gradients per batch.
package train

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"lightator/internal/nn"
)

// Dataset is the minimal data access the trainer needs.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample writes sample i's input into dst (shaped like one input) and
	// returns its label.
	Sample(i int, dst []float64) int
	// InputShape returns the per-sample tensor shape (no batch dim).
	InputShape() []int
}

// SGD is a stochastic-gradient-descent optimizer with classical momentum
// and L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param][]float64
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*nn.Param][]float64{}}
}

// Step applies one update to every parameter from its accumulated
// gradient, then leaves gradients untouched (caller zeroes them).
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.velocity[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + o.WeightDecay*p.Data[i]
			v[i] = o.Momentum*v[i] - o.LR*g
			p.Data[i] += v[i]
		}
	}
}

// Config controls a training run.
type Config struct {
	// Epochs of float pre-training.
	Epochs int
	// QATEpochs of quantization-aware fine-tuning appended after the
	// float phase (the paper uses six).
	QATEpochs int
	// WBits enables weight fake-quantization at the QAT phase.
	WBits int
	// ABits enables activation fake-quantization (ActQuant layers must
	// already exist in the network; their bit width is set by the model
	// builder).
	ABits int
	// BatchSize per optimizer step.
	BatchSize int
	// LR is the initial learning rate; it decays by LRDecay each epoch.
	LR      float64
	LRDecay float64
	// Momentum for SGD.
	Momentum float64
	// WeightDecay (L2).
	WeightDecay float64
	// Workers for data-parallel gradient computation; 0 = NumCPU.
	Workers int
	// Seed for shuffling.
	Seed int64
	// Verbose prints per-epoch progress.
	Verbose bool
}

// DefaultConfig returns a sensible small-model training recipe.
func DefaultConfig() Config {
	return Config{
		Epochs:      4,
		QATEpochs:   3,
		WBits:       4,
		ABits:       4,
		BatchSize:   32,
		LR:          0.05,
		LRDecay:     0.85,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Seed:        1,
	}
}

// Result summarises a training run.
type Result struct {
	TrainLoss  []float64 // per epoch
	FinalLoss  float64
	EpochsRun  int
	QATEnabled bool
}

// Train runs float training followed by QAT fine-tuning on net.
func Train(net *nn.Sequential, ds Dataset, cfg Config) (Result, error) {
	if cfg.BatchSize < 1 {
		return Result{}, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{}
	lr := cfg.LR

	totalEpochs := cfg.Epochs + cfg.QATEpochs
	for epoch := 0; epoch < totalEpochs; epoch++ {
		if epoch == cfg.Epochs && cfg.QATEpochs > 0 {
			// Switch to quantization-aware fine-tuning. WBits == 0 means
			// the caller attached (possibly mixed-precision) quantizers
			// itself; leave them untouched.
			if cfg.WBits > 0 {
				nn.EnableQAT(net, cfg.WBits)
			}
			res.QATEnabled = true
		}
		// Freeze activation calibration for the last half of QAT.
		if cfg.QATEpochs > 0 && epoch >= cfg.Epochs+(cfg.QATEpochs+1)/2 {
			nn.FreezeActQuant(net, true)
		}
		opt.LR = lr
		loss, err := trainEpoch(net, ds, cfg, opt, rng, workers)
		if err != nil {
			return res, err
		}
		res.TrainLoss = append(res.TrainLoss, loss)
		res.FinalLoss = loss
		res.EpochsRun++
		lr *= cfg.LRDecay
		if cfg.Verbose {
			fmt.Printf("epoch %2d/%d  loss %.4f  lr %.4f  qat=%v\n", epoch+1, totalEpochs, loss, opt.LR, res.QATEnabled)
		}
	}
	nn.FreezeActQuant(net, true)
	return res, nil
}

// trainEpoch runs one pass over the dataset with data-parallel workers.
func trainEpoch(net *nn.Sequential, ds Dataset, cfg Config, opt *SGD, rng *rand.Rand, workers int) (float64, error) {
	n := ds.Len()
	perm := rng.Perm(n)
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}

	clones := make([]*nn.Sequential, workers)
	for i := range clones {
		clones[i] = net.CloneShared()
	}
	masterParams := net.Params()

	totalLoss := 0.0
	batches := 0
	for start := 0; start < n; start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > n {
			end = n
		}
		idxs := perm[start:end]
		// Split the batch across workers.
		per := (len(idxs) + workers - 1) / workers
		var wg sync.WaitGroup
		losses := make([]float64, workers)
		errs := make([]error, workers)
		counts := make([]int, workers)
		for w := 0; w < workers; w++ {
			lo := w * per
			if lo >= len(idxs) {
				break
			}
			hi := lo + per
			if hi > len(idxs) {
				hi = len(idxs)
			}
			wg.Add(1)
			go func(w int, part []int) {
				defer wg.Done()
				clone := clones[w]
				clone.ZeroGrad()
				shape := append([]int{len(part)}, inShape...)
				x := nn.NewTensor(shape...)
				labels := make([]int, len(part))
				for i, idx := range part {
					labels[i] = ds.Sample(idx, x.Data[i*sampleSize:(i+1)*sampleSize])
				}
				y, err := clone.Forward(x, true)
				if err != nil {
					errs[w] = err
					return
				}
				loss, grad, err := nn.SoftmaxCrossEntropy(y, labels)
				if err != nil {
					errs[w] = err
					return
				}
				if err := clone.Backward(grad); err != nil {
					errs[w] = err
					return
				}
				losses[w] = loss
				counts[w] = len(part)
			}(w, idxs[lo:hi])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		// Reduce worker gradients into the master params, weighted by
		// each worker's share of the batch.
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		for _, p := range masterParams {
			p.ZeroGrad()
		}
		for w, clone := range clones {
			if counts[w] == 0 {
				continue
			}
			scale := float64(counts[w]) / float64(total)
			cp := clone.Params()
			for pi, p := range masterParams {
				for i := range p.Grad {
					p.Grad[i] += cp[pi].Grad[i] * scale
				}
			}
			totalLoss += losses[w] * scale
		}
		batches++
		opt.Step(masterParams)
		// Propagate activation-quantizer calibration from worker 0 back
		// to the master (scales drift identically across workers since
		// data distribution is shared; worker 0 is representative).
		if err := nn.SyncActQuantScales(net, clones[0]); err != nil {
			return 0, err
		}
		for _, clone := range clones[1:] {
			if err := nn.SyncActQuantScales(clone, net); err != nil {
				return 0, err
			}
		}
	}
	if batches == 0 {
		return 0, fmt.Errorf("train: empty dataset")
	}
	return totalLoss / float64(batches), nil
}

// Evaluate computes classification accuracy of net over ds in inference
// mode, in parallel batches.
func Evaluate(net *nn.Sequential, ds Dataset, batchSize int) (float64, error) {
	if batchSize < 1 {
		batchSize = 64
	}
	n := ds.Len()
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}
	hits := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		shape := append([]int{end - start}, inShape...)
		x := nn.NewTensor(shape...)
		labels := make([]int, end-start)
		for i := 0; i < end-start; i++ {
			labels[i] = ds.Sample(start+i, x.Data[i*sampleSize:(i+1)*sampleSize])
		}
		y, err := net.Forward(x, false)
		if err != nil {
			return 0, err
		}
		preds := nn.Argmax(y)
		for i, p := range preds {
			if p == labels[i] {
				hits++
			}
		}
	}
	return float64(hits) / float64(n), nil
}

// EvaluatePhotonic measures accuracy through the photonic executor, which
// is the end-to-end number Table 1 reports for Lightator.
func EvaluatePhotonic(pe *nn.PhotonicExec, ds Dataset, batchSize, maxSamples int) (float64, error) {
	if batchSize < 1 {
		batchSize = 16
	}
	n := ds.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}
	hits := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		shape := append([]int{end - start}, inShape...)
		x := nn.NewTensor(shape...)
		labels := make([]int, end-start)
		for i := 0; i < end-start; i++ {
			labels[i] = ds.Sample(start+i, x.Data[i*sampleSize:(i+1)*sampleSize])
		}
		y, err := pe.Forward(x)
		if err != nil {
			return 0, err
		}
		preds := nn.Argmax(y)
		for i, p := range preds {
			if p == labels[i] {
				hits++
			}
		}
	}
	return float64(hits) / float64(n), nil
}
