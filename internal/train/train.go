// Package train implements the application-level training loop of the
// paper's evaluation framework (Fig. 7): plain SGD-with-momentum training
// of the float model followed by quantization-aware fine-tuning ("an
// additional six epochs of training employing quantization-aware
// techniques"). Training is data-parallel across worker goroutines that
// share weight storage and reduce gradients per batch.
package train

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"lightator/internal/nn"
	"lightator/internal/oc"
)

// Dataset is the minimal data access the trainer needs.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample writes sample i's input into dst (shaped like one input) and
	// returns its label.
	Sample(i int, dst []float64) int
	// InputShape returns the per-sample tensor shape (no batch dim).
	InputShape() []int
}

// SGD is a stochastic-gradient-descent optimizer with classical momentum
// and L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param][]float64
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*nn.Param][]float64{}}
}

// Step applies one update to every parameter from its accumulated
// gradient, then leaves gradients untouched (caller zeroes them).
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.velocity[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + o.WeightDecay*p.Data[i]
			v[i] = o.Momentum*v[i] - o.LR*g
			p.Data[i] += v[i]
		}
	}
}

// Config controls a training run.
//
// Determinism contract: a finished run is a pure function of the network
// initialisation, the dataset, and every Config field except Workers and
// Verbose. Workers only sets the degree of parallelism — each batch is
// split into fixed-size microbatches whose gradients are accumulated in
// separate buffers and reduced in microbatch-index order, and activation
// calibration reduces per-clone observed maxima by exact max before a
// single momentum update per batch — so the trained weights are
// bit-identical for any worker count, including the host-dependent
// NumCPU default.
type Config struct {
	// Epochs of float pre-training.
	Epochs int
	// QATEpochs of quantization-aware fine-tuning appended after the
	// float phase (the paper uses six).
	QATEpochs int
	// WBits enables weight fake-quantization at the QAT phase.
	WBits int
	// ABits enables activation fake-quantization (ActQuant layers must
	// already exist in the network; their bit width is set by the model
	// builder).
	ABits int
	// BatchSize per optimizer step.
	BatchSize int
	// LR is the initial learning rate; it decays by LRDecay each epoch.
	LR      float64
	LRDecay float64
	// Momentum for SGD.
	Momentum float64
	// WeightDecay (L2).
	WeightDecay float64
	// AnalogCore, when non-nil, makes the QAT phase hardware-aware:
	// Dense/Conv2D forwards run through the analog optical model
	// (crosstalk-in-the-loop, see nn.EnableAnalogQAT) instead of the
	// plain quantization grid, with a straight-through estimator
	// backward. The core's weight precision takes priority over WBits.
	// Use a Physical-fidelity core to keep training deterministic.
	AnalogCore *oc.Core
	// Workers for data-parallel gradient computation; 0 = NumCPU. Never
	// affects the trained weights (see the determinism contract above).
	Workers int
	// Seed for shuffling.
	Seed int64
	// Verbose prints per-epoch progress.
	Verbose bool
}

// DefaultConfig returns a sensible small-model training recipe.
func DefaultConfig() Config {
	return Config{
		Epochs:      4,
		QATEpochs:   3,
		WBits:       4,
		ABits:       4,
		BatchSize:   32,
		LR:          0.05,
		LRDecay:     0.85,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Seed:        1,
	}
}

// Result summarises a training run.
type Result struct {
	TrainLoss  []float64 // per epoch
	FinalLoss  float64
	EpochsRun  int
	QATEnabled bool
}

// Train runs float training followed by QAT fine-tuning on net.
func Train(net *nn.Sequential, ds Dataset, cfg Config) (Result, error) {
	if cfg.BatchSize < 1 {
		return Result{}, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{}
	lr := cfg.LR

	totalEpochs := cfg.Epochs + cfg.QATEpochs
	for epoch := 0; epoch < totalEpochs; epoch++ {
		if epoch == cfg.Epochs && cfg.QATEpochs > 0 {
			// Switch to quantization-aware fine-tuning. WBits == 0 and a
			// nil AnalogCore means the caller attached (possibly
			// mixed-precision) quantizers itself; leave them untouched.
			switch {
			case cfg.AnalogCore != nil:
				nn.EnableAnalogQAT(net, cfg.AnalogCore)
			case cfg.WBits > 0:
				nn.EnableQAT(net, cfg.WBits)
			}
			res.QATEnabled = true
		}
		// Freeze activation calibration for the last half of QAT.
		if cfg.QATEpochs > 0 && epoch >= cfg.Epochs+(cfg.QATEpochs+1)/2 {
			nn.FreezeActQuant(net, true)
		}
		opt.LR = lr
		loss, err := trainEpoch(net, ds, cfg, opt, rng, workers)
		if err != nil {
			return res, err
		}
		res.TrainLoss = append(res.TrainLoss, loss)
		res.FinalLoss = loss
		res.EpochsRun++
		lr *= cfg.LRDecay
		if cfg.Verbose {
			fmt.Printf("epoch %2d/%d  loss %.4f  lr %.4f  qat=%v\n", epoch+1, totalEpochs, loss, opt.LR, res.QATEnabled)
		}
	}
	nn.FreezeActQuant(net, true)
	return res, nil
}

// microBatchSize is the fixed gradient-accumulation granule. Batches are
// always split at this granularity — never by worker count — so the
// floating-point grouping of the gradient reduction is a property of the
// batch alone and training output cannot depend on Config.Workers.
const microBatchSize = 8

// trainEpoch runs one pass over the dataset with data-parallel workers.
//
// Determinism: each batch is cut into microbatches of microBatchSize.
// Workers claim microbatches from a shared counter (scheduling is racy,
// results are not): every microbatch's gradients land in their own
// buffers, which the reduction then folds into the master parameters in
// microbatch-index order. Activation calibration runs externally — clones
// record observed maxima, the reduction takes the exact max across all
// clones and applies one momentum update on the master per batch — so
// neither the partition nor the schedule can change the result.
func trainEpoch(net *nn.Sequential, ds Dataset, cfg Config, opt *SGD, rng *rand.Rand, workers int) (float64, error) {
	n := ds.Len()
	perm := rng.Perm(n)
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}

	clones := make([]*nn.Sequential, workers)
	cloneAQ := make([][]*nn.ActQuant, workers)
	for i := range clones {
		clones[i] = net.CloneShared()
		nn.SetActQuantExternal(clones[i], true)
		cloneAQ[i] = nn.ActQuants(clones[i])
	}
	masterParams := net.Params()
	masterAQ := nn.ActQuants(net)

	// Per-microbatch gradient buffers, reused across batches.
	maxMB := (cfg.BatchSize + microBatchSize - 1) / microBatchSize
	type mbResult struct {
		loss  float64
		count int
		grads [][]float64 // one buffer per parameter
	}
	mbs := make([]mbResult, maxMB)
	for m := range mbs {
		mbs[m].grads = make([][]float64, len(masterParams))
		for pi, p := range masterParams {
			mbs[m].grads[pi] = make([]float64, len(p.Data))
		}
	}

	totalLoss := 0.0
	batches := 0
	for start := 0; start < n; start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > n {
			end = n
		}
		idxs := perm[start:end]
		nMB := (len(idxs) + microBatchSize - 1) / microBatchSize
		var next int64
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers && w < nMB; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clone := clones[w]
				for {
					m := int(atomic.AddInt64(&next, 1)) - 1
					if m >= nMB {
						return
					}
					lo := m * microBatchSize
					hi := lo + microBatchSize
					if hi > len(idxs) {
						hi = len(idxs)
					}
					part := idxs[lo:hi]
					clone.ZeroGrad()
					shape := append([]int{len(part)}, inShape...)
					x := nn.NewTensor(shape...)
					labels := make([]int, len(part))
					for i, idx := range part {
						labels[i] = ds.Sample(idx, x.Data[i*sampleSize:(i+1)*sampleSize])
					}
					y, err := clone.Forward(x, true)
					if err != nil {
						errs[w] = err
						return
					}
					loss, grad, err := nn.SoftmaxCrossEntropy(y, labels)
					if err != nil {
						errs[w] = err
						return
					}
					if err := clone.Backward(grad); err != nil {
						errs[w] = err
						return
					}
					cp := clone.Params()
					for pi := range cp {
						copy(mbs[m].grads[pi], cp[pi].Grad)
					}
					mbs[m].loss = loss
					mbs[m].count = len(part)
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		// Fold microbatch gradients into the master params in index
		// order, weighted by each microbatch's share of the batch.
		total := 0
		for m := 0; m < nMB; m++ {
			total += mbs[m].count
		}
		if total == 0 {
			continue
		}
		for _, p := range masterParams {
			p.ZeroGrad()
		}
		for m := 0; m < nMB; m++ {
			scale := float64(mbs[m].count) / float64(total)
			for pi, p := range masterParams {
				g := mbs[m].grads[pi]
				for i := range p.Grad {
					p.Grad[i] += g[i] * scale
				}
			}
			totalLoss += mbs[m].loss * scale
		}
		batches++
		opt.Step(masterParams)
		// Activation calibration: exact max across every clone's observed
		// maxima (order-free), one momentum update on the master, then
		// sync the new scales back to all clones.
		for qi, maq := range masterAQ {
			if maq.Frozen {
				continue
			}
			batchMax := 0.0
			for w := range clones {
				if m := cloneAQ[w][qi].TakeBatchMax(); m > batchMax {
					batchMax = m
				}
			}
			maq.UpdateScale(batchMax)
		}
		for _, clone := range clones {
			if err := nn.SyncActQuantScales(clone, net); err != nil {
				return 0, err
			}
		}
	}
	if batches == 0 {
		return 0, fmt.Errorf("train: empty dataset")
	}
	return totalLoss / float64(batches), nil
}

// Evaluate computes classification accuracy of net over ds in inference
// mode, in parallel batches.
func Evaluate(net *nn.Sequential, ds Dataset, batchSize int) (float64, error) {
	if batchSize < 1 {
		batchSize = 64
	}
	n := ds.Len()
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}
	hits := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		shape := append([]int{end - start}, inShape...)
		x := nn.NewTensor(shape...)
		labels := make([]int, end-start)
		for i := 0; i < end-start; i++ {
			labels[i] = ds.Sample(start+i, x.Data[i*sampleSize:(i+1)*sampleSize])
		}
		y, err := net.Forward(x, false)
		if err != nil {
			return 0, err
		}
		preds := nn.Argmax(y)
		for i, p := range preds {
			if p == labels[i] {
				hits++
			}
		}
	}
	return float64(hits) / float64(n), nil
}

// EvaluatePhotonic measures accuracy through the photonic executor, which
// is the end-to-end number Table 1 reports for Lightator.
func EvaluatePhotonic(pe *nn.PhotonicExec, ds Dataset, batchSize, maxSamples int) (float64, error) {
	if batchSize < 1 {
		batchSize = 16
	}
	n := ds.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	inShape := ds.InputShape()
	sampleSize := 1
	for _, s := range inShape {
		sampleSize *= s
	}
	hits := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		shape := append([]int{end - start}, inShape...)
		x := nn.NewTensor(shape...)
		labels := make([]int, end-start)
		for i := 0; i < end-start; i++ {
			labels[i] = ds.Sample(start+i, x.Data[i*sampleSize:(i+1)*sampleSize])
		}
		y, err := pe.Forward(x)
		if err != nil {
			return 0, err
		}
		preds := nn.Argmax(y)
		for i, p := range preds {
			if p == labels[i] {
				hits++
			}
		}
	}
	return float64(hits) / float64(n), nil
}
