package train

import (
	"testing"

	"lightator/internal/dataset"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
)

func TestSGDStepMomentum(t *testing.T) {
	p := nn.NewParam("w", 2)
	p.Data[0] = 1
	p.Grad[0] = 1
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*nn.Param{p})
	if p.Data[0] != 0.9 {
		t.Errorf("after step 1: %g, want 0.9", p.Data[0])
	}
	// Momentum carries: v = 0.9*(-0.1) - 0.1*1 = -0.19.
	opt.Step([]*nn.Param{p})
	if diff := p.Data[0] - (0.9 - 0.19); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("after step 2: %g, want 0.71", p.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := nn.NewParam("w", 1)
	p.Data[0] = 1
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*nn.Param{p})
	// g = 0 + 0.5*1, step = -0.1*0.5 = -0.05.
	if diff := p.Data[0] - 0.95; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("decayed weight %g, want 0.95", p.Data[0])
	}
}

func TestTrainLeNetOnDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	data := dataset.NewDigits(1400, 11)
	trainSet, testSet, err := data.Split(1200)
	if err != nil {
		t.Fatal(err)
	}
	net := models.BuildLeNet(10, 4)
	net.InitHe(5)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	cfg.QATEpochs = 2
	cfg.WBits = 4
	cfg.BatchSize = 32
	res, err := Train(net, trainSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochsRun != 5 {
		t.Errorf("epochs run %d", res.EpochsRun)
	}
	if !res.QATEnabled {
		t.Error("QAT never enabled")
	}
	// Loss must have dropped substantially from the ~ln(10)=2.3 start.
	if res.FinalLoss > 1.0 {
		t.Errorf("final loss %g, want < 1.0", res.FinalLoss)
	}
	acc, err := Evaluate(net, testSet, 64)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("digit accuracy %g, want >= 0.8 (QAT 4-bit LeNet)", acc)
	}

	// The photonic path should track the digital quantized accuracy.
	pe, err := nn.NewPhotonicExec(net, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	pacc, err := EvaluatePhotonic(pe, testSet, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pacc < acc-0.15 {
		t.Errorf("photonic accuracy %g far below digital %g", pacc, acc)
	}
}

func TestEvaluateEmptyBatchDefault(t *testing.T) {
	data := dataset.NewDigits(10, 3)
	net := models.BuildLeNet(10, 4)
	net.InitHe(1)
	if _, err := Evaluate(net, data, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	net := models.BuildLeNet(10, 4)
	data := dataset.NewDigits(8, 1)
	cfg := DefaultConfig()
	cfg.BatchSize = 0
	if _, err := Train(net, data, cfg); err == nil {
		t.Error("batch size 0 accepted")
	}
}
