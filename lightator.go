// Package lightator is the public API of the Lightator reproduction: an
// optical near-sensor accelerator with compressive acquisition for
// versatile image processing at the edge (Morsali et al., DAC 2024).
//
// The facade wires together the internal subsystems — the ADC-less Bayer
// sensor, the DMVA laser array, the MR-based optical core with its
// Compressive Acquisitor, the hardware mapper and the architecture
// simulator — behind a small surface:
//
//	acc, _ := lightator.New(lightator.DefaultConfig())
//	frame, _ := acc.Capture(scene)            // ADC-less 4-bit readout
//	small, _ := acc.AcquireCompressed(scene)  // + fused gray/avg-pool CA
//	y, _ := acc.MatVec(weights, activations)  // raw photonic MVM
//	rep, _ := acc.Simulate("lenet")           // power/latency/FPS report
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package lightator

import (
	"fmt"

	"lightator/internal/arch"
	"lightator/internal/energy"
	"lightator/internal/mapping"
	"lightator/internal/models"
	"lightator/internal/oc"
	"lightator/internal/photonics"
	"lightator/internal/sensor"
)

// Re-exported core types so callers only import this package.
type (
	// Image is an H x W x C scene or feature plane with values in [0,1].
	Image = sensor.Image
	// Frame is a 4-bit ADC-less sensor readout.
	Frame = sensor.Frame
	// Fidelity selects the analog simulation depth (Ideal, Physical,
	// PhysicalNoisy).
	Fidelity = oc.Fidelity
	// PerformanceReport is a whole-model architecture simulation result.
	PerformanceReport = arch.Report
	// LayerDims describes one DNN layer for the simulator.
	LayerDims = mapping.LayerDims
	// Ring is the add-drop microring resonator device model.
	Ring = photonics.Ring
)

// Fidelity levels.
const (
	Ideal         = oc.Ideal
	Physical      = oc.Physical
	PhysicalNoisy = oc.PhysicalNoisy
)

// NewImage allocates a zeroed image.
func NewImage(h, w, c int) *Image { return sensor.NewImage(h, w, c) }

// WeightBankRing returns an MR aligned to the given wavelength with the
// weight-bank geometry used throughout the optical core (Fig. 1 device).
func WeightBankRing(wavelength float64) *Ring { return photonics.WeightBankRing(wavelength) }

// CBandCenter is the center of the WDM grid, meters.
const CBandCenter = photonics.CBandCenter

// Precision is a [W:A] configuration, optionally mixed (Lightator-MX).
type Precision struct {
	// WBits is the weight precision mapped onto MR detunings (paper: 4,
	// 3 or 2).
	WBits int
	// ABits is the DMVA activation precision (paper: 4).
	ABits int
	// MXFirstWBits, when non-zero, keeps the first weight layer at this
	// precision (the paper's Lightator-MX scheme).
	MXFirstWBits int
}

// Name renders the paper's [W:A] notation.
func (p Precision) Name() string {
	if p.MXFirstWBits != 0 && p.MXFirstWBits != p.WBits {
		return fmt.Sprintf("[%d:%d][%d:%d]", p.MXFirstWBits, p.ABits, p.WBits, p.ABits)
	}
	return fmt.Sprintf("[%d:%d]", p.WBits, p.ABits)
}

// schedule converts to the simulator's precision schedule.
func (p Precision) schedule() arch.PrecisionSchedule {
	if p.MXFirstWBits != 0 {
		return arch.MX(p.MXFirstWBits, p.WBits, p.ABits)
	}
	return arch.Uniform(p.WBits, p.ABits)
}

// Config assembles an accelerator instance.
type Config struct {
	// Precision of the optical core.
	Precision Precision
	// Fidelity of the analog simulation.
	Fidelity Fidelity
	// SensorRows/SensorCols size the pixel array (the paper's imager is
	// 256x256).
	SensorRows, SensorCols int
	// CAPool is the Compressive Acquisitor's pooling factor (even, >= 2);
	// 0 disables the CA stage.
	CAPool int
}

// DefaultConfig is the paper's flagship configuration: [4:4], physical
// analog model, 256x256 sensor, 2x2 compressive acquisition.
func DefaultConfig() Config {
	return Config{
		Precision:  Precision{WBits: 4, ABits: 4},
		Fidelity:   Physical,
		SensorRows: sensor.DefaultRows,
		SensorCols: sensor.DefaultCols,
		CAPool:     2,
	}
}

// Accelerator is a configured Lightator instance.
type Accelerator struct {
	cfg    Config
	array  *sensor.Array
	core   *oc.Core
	ca     *oc.Acquisitor
	params energy.Params
}

// New builds an accelerator.
func New(cfg Config) (*Accelerator, error) {
	if cfg.SensorRows == 0 {
		cfg.SensorRows = sensor.DefaultRows
	}
	if cfg.SensorCols == 0 {
		cfg.SensorCols = sensor.DefaultCols
	}
	arr, err := sensor.NewArray(cfg.SensorRows, cfg.SensorCols)
	if err != nil {
		return nil, err
	}
	core, err := oc.NewCore(cfg.Precision.WBits, cfg.Precision.ABits, cfg.Fidelity)
	if err != nil {
		return nil, err
	}
	acc := &Accelerator{cfg: cfg, array: arr, core: core, params: energy.Default()}
	if cfg.CAPool != 0 {
		ca, err := oc.NewAcquisitor(core, cfg.CAPool)
		if err != nil {
			return nil, err
		}
		acc.ca = ca
	}
	return acc, nil
}

// Config returns the accelerator's configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// Capture exposes the ADC-less acquisition path: Bayer mosaic, global-
// shutter exposure and 15-comparator CRC readout to 4-bit codes.
func (a *Accelerator) Capture(scene *Image) (*Frame, error) {
	return a.array.Capture(scene)
}

// AcquireCompressed captures a scene and runs the Compressive Acquisitor:
// fused RGB-to-grayscale + average pooling in one optical pass (Eq. 1).
func (a *Accelerator) AcquireCompressed(scene *Image) (*Image, error) {
	if a.ca == nil {
		return nil, fmt.Errorf("lightator: compressive acquisition disabled (CAPool = 0)")
	}
	frame, err := a.array.Capture(scene)
	if err != nil {
		return nil, err
	}
	return a.ca.Compress(frame)
}

// MatVec programs a weight matrix (entries in [-1,1]) onto the MR banks
// and streams one activation vector (entries in [0,1]) through the
// optical core, returning the analog MAC results.
func (a *Accelerator) MatVec(weights [][]float64, activations []float64) ([]float64, error) {
	return a.core.MatVec(weights, activations)
}

// Simulate runs a named descriptor model ("lenet", "vgg9", "vgg9-ca",
// "vgg16", "vgg13", "alexnet") through the architecture simulator at the
// accelerator's precision.
func (a *Accelerator) Simulate(model string) (*PerformanceReport, error) {
	layers, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	return arch.Simulate(model, layers, a.cfg.Precision.schedule(), a.params)
}

// SimulateLayers runs an arbitrary layer list through the simulator.
func (a *Accelerator) SimulateLayers(name string, layers []LayerDims) (*PerformanceReport, error) {
	return arch.Simulate(name, layers, a.cfg.Precision.schedule(), a.params)
}

// Models lists the built-in descriptor models.
func Models() []string {
	return []string{"lenet", "vgg9", "vgg9-ca", "vgg9-cifar100", "vgg13", "vgg16", "alexnet"}
}
