// Package lightator is the public API of the Lightator reproduction: an
// optical near-sensor accelerator with compressive acquisition for
// versatile image processing at the edge (Morsali et al., DAC 2024).
//
// The facade wires together the internal subsystems — the ADC-less Bayer
// sensor, the DMVA laser array, the MR-based optical core with its
// Compressive Acquisitor, the hardware mapper and the architecture
// simulator — behind a small surface:
//
//	acc, _ := lightator.New(lightator.DefaultConfig())
//	frame, _ := acc.Capture(scene)            // ADC-less 4-bit readout
//	small, _ := acc.AcquireCompressed(scene)  // + fused gray/avg-pool CA
//	y, _ := acc.MatVec(weights, activations)  // raw photonic MVM
//	rep, _ := acc.Simulate("lenet")           // power/latency/FPS report
//
// # Batched frame streams
//
// The single-scene paths above process one frame on the calling
// goroutine. For frame streams — the workload the paper's FPS numbers
// are about — the facade exposes a bounded worker-pool pipeline
// (internal/pipeline) that runs Capture, Compressive Acquisition and an
// optional programmed MVM concurrently with per-frame deterministic
// noise seeding, so N-worker output is bit-identical to the 1-worker
// pipeline run even in PhysicalNoisy fidelity. (The batched paths seed
// noise per frame, so in PhysicalNoisy they intentionally differ from
// the shared-stream single-scene calls above — determinism, not stream
// continuity, is the contract.)
//
//	p, _ := acc.NewPipeline(lightator.PipelineOptions{Workers: 4})
//	results, stats, _ := p.Run(scenes)        // ordered batch
//	out := p.Stream(sceneCh)                  // backpressured stream
//
// Convenience wrappers cover the common batch shapes: CaptureBatch,
// AcquireCompressedBatch, and MatVecBatch (which shards the weight
// matrix rows across goroutines). See docs/PIPELINE.md for the worker
// model and determinism guarantees.
//
// # Compressed-domain processing
//
// The kernel layer (internal/kernels) is the paper's "versatile image
// processing" made concrete: image-processing operators — least-squares
// and iterative reconstruction, edge detection, 2x downsampling,
// denoising, block convolution — expressed as matrix operators composed
// with the CA sensing matrix, executed on the compressed measurement
// plane through the same optical MVM path (never on a reconstructed
// frame):
//
//	acc.Kernels()                                  // registered kernel names
//	out, _ := acc.ProcessCompressed(scene, "edge") // capture + CA + kernel
//	outs, _ := acc.ProcessCompressedBatch(scenes, "reconstruct", 4)
//
// See docs/KERNELS.md for each operator's math and the determinism
// contract.
//
// # Compressed-domain CNN inference
//
// The inference layer (internal/infer) is the paper's headline DNN
// workload: trained networks whose conv/dense layers execute as seeded
// optical MVMs directly over the CA measurement plane, with the
// electronic block handling activations, pooling and quantizers.
// Built-in demonstration models register at construction; RegisterModel
// compiles networks trained with internal/train:
//
//	acc.Models()                                  // registered model names
//	logits, _ := acc.Infer(scene, "tiny-cnn")     // capture + CA + inference
//	logits, _ = acc.InferPlane(plane, "tiny-cnn") // pre-compressed input
//
// See docs/INFER.md for the layer mapping, the determinism contract and
// the accuracy-vs-compression behaviour.
//
// # Network serving
//
// The serving layer (internal/server) exposes the accelerator over
// HTTP/JSON with dynamic micro-batching: concurrent requests coalesce
// into pipeline batches without changing any response byte (each frame
// carries its own seed into the batch). /v1/process serves every
// registered compressed-domain kernel through the same micro-batcher.
//
//	srv, _ := acc.NewServer(lightator.ServeOptions{})
//	go srv.ListenAndServe(":8080")        // or cmd/lightator-serve
//
// See docs/SERVER.md for endpoints, wire formats, batching policy and
// operational behaviour (backpressure, caching, graceful drain), and
// docs/API.md for the complete facade + HTTP reference.
//
// See docs/DESIGN.md for the system inventory and docs/PIPELINE.md for
// the concurrent pipeline's worker model and determinism guarantees.
package lightator

import (
	"fmt"
	"runtime"
	"sync"

	"lightator/internal/arch"
	"lightator/internal/energy"
	"lightator/internal/fault"
	"lightator/internal/infer"
	"lightator/internal/kernels"
	"lightator/internal/mapping"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/photonics"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

// Re-exported core types so callers only import this package.
type (
	// Image is an H x W x C scene or feature plane with values in [0,1].
	Image = sensor.Image
	// Frame is a 4-bit ADC-less sensor readout.
	Frame = sensor.Frame
	// Fidelity selects the analog simulation depth (Ideal, Physical,
	// PhysicalNoisy).
	Fidelity = oc.Fidelity
	// PerformanceReport is a whole-model architecture simulation result.
	PerformanceReport = arch.Report
	// LayerDims describes one DNN layer for the simulator.
	LayerDims = mapping.LayerDims
	// Ring is the add-drop microring resonator device model.
	Ring = photonics.Ring
	// Pipeline is the batched concurrent frame engine.
	Pipeline = pipeline.Pipeline
	// PipelineResult is one frame's trip through the pipeline.
	PipelineResult = pipeline.Result
	// PipelineStats aggregates a pipeline run (FPS, per-stage latency
	// histograms).
	PipelineStats = pipeline.Stats
	// BatchPerformanceReport aggregates per-frame simulation reports.
	BatchPerformanceReport = arch.BatchReport
	// FaultPlan is a deterministic fault-injection plan (see
	// docs/FAULTS.md): a named set of seeded hardware faults — stuck or
	// drifting MR coefficients, comparator stuck-ats, laser droop,
	// transient bit-flips — activated on the optical core at construction.
	FaultPlan = fault.Plan
	// Fault is one injected hardware fault of a FaultPlan.
	Fault = fault.Fault
	// FaultWindow gates a fault in time: active iff a hash of the apply's
	// derived seed lands inside Duty residues mod Period (zero Window =
	// persistent), so activation is reproducible at any worker count.
	FaultWindow = fault.Window
	// ComponentHealth is a point-in-time copy of one component's
	// fault-tolerance counters (ABFT checks, detections, recovery-ladder
	// outcomes).
	ComponentHealth = fault.HealthSnapshot
)

// ParseFaultPlan strictly decodes a JSON fault plan and validates it.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return fault.ParsePlan(data) }

// Fidelity levels.
const (
	// Ideal computes exact quantized arithmetic with no analog effects.
	Ideal = oc.Ideal
	// Physical adds WDM inter-channel crosstalk from the MR Lorentzian
	// tails.
	Physical = oc.Physical
	// PhysicalNoisy additionally injects balanced-photodetector shot and
	// thermal noise into every arm readout.
	PhysicalNoisy = oc.PhysicalNoisy
)

// NewImage allocates a zeroed image.
func NewImage(h, w, c int) *Image { return sensor.NewImage(h, w, c) }

// WeightBankRing returns an MR aligned to the given wavelength with the
// weight-bank geometry used throughout the optical core (Fig. 1 device).
func WeightBankRing(wavelength float64) *Ring { return photonics.WeightBankRing(wavelength) }

// CBandCenter is the center of the WDM grid, meters.
const CBandCenter = photonics.CBandCenter

// Precision is a [W:A] configuration, optionally mixed (Lightator-MX).
type Precision struct {
	// WBits is the weight precision mapped onto MR detunings (paper: 4,
	// 3 or 2).
	WBits int
	// ABits is the DMVA activation precision (paper: 4).
	ABits int
	// MXFirstWBits, when non-zero, keeps the first weight layer at this
	// precision (the paper's Lightator-MX scheme).
	MXFirstWBits int
}

// Name renders the paper's [W:A] notation.
func (p Precision) Name() string {
	if p.MXFirstWBits != 0 && p.MXFirstWBits != p.WBits {
		return fmt.Sprintf("[%d:%d][%d:%d]", p.MXFirstWBits, p.ABits, p.WBits, p.ABits)
	}
	return fmt.Sprintf("[%d:%d]", p.WBits, p.ABits)
}

// schedule converts to the simulator's precision schedule.
func (p Precision) schedule() arch.PrecisionSchedule {
	if p.MXFirstWBits != 0 {
		return arch.MX(p.MXFirstWBits, p.WBits, p.ABits)
	}
	return arch.Uniform(p.WBits, p.ABits)
}

// Config assembles an accelerator instance.
type Config struct {
	// Precision of the optical core.
	Precision Precision
	// Fidelity of the analog simulation.
	Fidelity Fidelity
	// SensorRows/SensorCols size the pixel array (the paper's imager is
	// 256x256).
	SensorRows, SensorCols int
	// CAPool is the Compressive Acquisitor's pooling factor (even, >= 2);
	// 0 disables the CA stage.
	CAPool int
	// Seed is the base noise seed for the batched paths: frame i of a
	// batch derives its own stream from (Seed, i), making PhysicalNoisy
	// batches reproducible regardless of worker count or scheduling.
	Seed int64
	// FaultPlan, when non-nil, activates deterministic fault injection on
	// the optical core (chaos testing — see docs/FAULTS.md). Detected
	// faults run the recovery ladder; surviving degradation is flagged on
	// results and reported by the serving layer. nil (the default) injects
	// nothing and costs nothing on the hot path.
	FaultPlan *FaultPlan
}

// validate rejects configurations the deeper layers would only trip over
// later (or with an opaque message).
func (c Config) validate() error {
	p := c.Precision
	if p.WBits < 1 || p.WBits > 8 {
		return fmt.Errorf("lightator: weight precision %d bits outside [1,8] (paper: 4, 3 or 2)", p.WBits)
	}
	if p.ABits < 1 || p.ABits > 8 {
		return fmt.Errorf("lightator: activation precision %d bits outside [1,8] (paper: 4)", p.ABits)
	}
	if p.MXFirstWBits < 0 || p.MXFirstWBits > 8 {
		return fmt.Errorf("lightator: MX first-layer precision %d bits outside [0,8]", p.MXFirstWBits)
	}
	if c.SensorRows < 0 || c.SensorCols < 0 {
		return fmt.Errorf("lightator: negative sensor size %dx%d", c.SensorRows, c.SensorCols)
	}
	if c.CAPool < 0 {
		return fmt.Errorf("lightator: negative CA pooling factor %d", c.CAPool)
	}
	if c.CAPool != 0 && (c.CAPool%2 != 0 || c.CAPool < 2) {
		return fmt.Errorf("lightator: CA pooling factor %d must be even and >= 2 (Bayer quads), or 0 to disable", c.CAPool)
	}
	return nil
}

// DefaultConfig is the paper's flagship configuration: [4:4], physical
// analog model, 256x256 sensor, 2x2 compressive acquisition.
func DefaultConfig() Config {
	return Config{
		Precision:  Precision{WBits: 4, ABits: 4},
		Fidelity:   Physical,
		SensorRows: sensor.DefaultRows,
		SensorCols: sensor.DefaultCols,
		CAPool:     2,
		Seed:       0x11647a70,
	}
}

// Accelerator is a configured Lightator instance.
type Accelerator struct {
	cfg    Config
	array  *sensor.Array
	core   *oc.Core
	ca     *oc.Acquisitor
	eng    *kernels.Engine
	inf    *infer.Engine
	params energy.Params

	// pipeMu guards the lazily-built per-kernel and per-model pipelines
	// behind ProcessCompressed / Infer (one per name, reused across
	// calls).
	pipeMu     sync.Mutex
	kernPipes  map[string]*Pipeline
	inferPipes map[string]*Pipeline
}

// New builds an accelerator.
func New(cfg Config) (*Accelerator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SensorRows == 0 {
		cfg.SensorRows = sensor.DefaultRows
	}
	if cfg.SensorCols == 0 {
		cfg.SensorCols = sensor.DefaultCols
	}
	arr, err := sensor.NewArray(cfg.SensorRows, cfg.SensorCols)
	if err != nil {
		return nil, err
	}
	core, err := oc.NewCore(cfg.Precision.WBits, cfg.Precision.ABits, cfg.Fidelity)
	if err != nil {
		return nil, err
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Validate(); err != nil {
			return nil, fmt.Errorf("lightator: fault plan: %w", err)
		}
		// Before any matrix programs: labelled matrices compile the plan's
		// matching faults when they register (the CA below, kernels,
		// models, the pipeline MVM).
		core.SetFaultPlan(cfg.FaultPlan)
	}
	acc := &Accelerator{
		cfg: cfg, array: arr, core: core, params: energy.Default(),
		kernPipes: make(map[string]*Pipeline), inferPipes: make(map[string]*Pipeline),
	}
	if cfg.CAPool != 0 {
		if cfg.SensorRows%cfg.CAPool != 0 || cfg.SensorCols%cfg.CAPool != 0 {
			return nil, fmt.Errorf("lightator: sensor %dx%d not divisible by CA pool %d", cfg.SensorRows, cfg.SensorCols, cfg.CAPool)
		}
		ca, err := oc.NewAcquisitor(core, cfg.CAPool)
		if err != nil {
			return nil, err
		}
		acc.ca = ca
		eng, err := kernels.NewEngine(core, cfg.CAPool)
		if err != nil {
			return nil, err
		}
		acc.eng = eng
		inf, err := infer.NewEngine(core, cfg.CAPool,
			cfg.SensorRows/cfg.CAPool, cfg.SensorCols/cfg.CAPool, cfg.Seed)
		if err != nil {
			return nil, err
		}
		acc.inf = inf
	}
	return acc, nil
}

// Config returns the accelerator's configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// Health reports every optical component's fault-tolerance counters
// (ABFT checks, detections, recovery-ladder outcomes), sorted by
// component label. All-zero without an active FaultPlan.
func (a *Accelerator) Health() []ComponentHealth { return a.core.Health().Snapshot() }

// Degraded reports whether any optical component is serving degraded
// output: rows retired to the digital fallback, or unrecovered ABFT
// detections (see docs/FAULTS.md#degradation).
func (a *Accelerator) Degraded() bool { return a.core.Health().Degraded() }

// Capture exposes the ADC-less acquisition path: Bayer mosaic, global-
// shutter exposure and 15-comparator CRC readout to 4-bit codes.
func (a *Accelerator) Capture(scene *Image) (*Frame, error) {
	return a.array.Capture(scene)
}

// AcquireCompressed captures a scene and runs the Compressive Acquisitor:
// fused RGB-to-grayscale + average pooling in one optical pass (Eq. 1).
func (a *Accelerator) AcquireCompressed(scene *Image) (*Image, error) {
	if a.ca == nil {
		return nil, fmt.Errorf("lightator: compressive acquisition disabled (CAPool = 0)")
	}
	frame, err := a.array.Capture(scene)
	if err != nil {
		return nil, err
	}
	return a.ca.Compress(frame)
}

// MatVec programs a weight matrix (entries in [-1,1]) onto the MR banks
// and streams one activation vector (entries in [0,1]) through the
// optical core, returning the analog MAC results.
func (a *Accelerator) MatVec(weights [][]float64, activations []float64) ([]float64, error) {
	return a.core.MatVec(weights, activations)
}

// PipelineOptions configure a batched concurrent pipeline on top of the
// accelerator's sensor and optical core.
type PipelineOptions struct {
	// Workers bounds the frames processed concurrently; 0 means
	// runtime.NumCPU().
	Workers int
	// Queue is the backpressure window (job/result buffer depth); 0
	// means 2*Workers.
	Queue int
	// Seed overrides the accelerator Config's base noise seed when
	// non-zero.
	Seed int64
	// Weights, when non-nil, adds an optical MVM stage after capture /
	// compression (see pipeline.Config.Weights for the expected width).
	Weights [][]float64
	// Kernel, when non-empty, adds a compressed-domain processing stage
	// running the named registered kernel (see Kernels) on every frame's
	// CA output plane. Requires compressive acquisition to be enabled.
	Kernel string
	// Infer, when non-empty, adds a compressed-domain CNN inference stage
	// running the named registered model (see Models) on every frame's CA
	// output plane. Requires compressive acquisition to be enabled.
	Infer string
	// DisableCA drops the Compressive Acquisition stage even when the
	// accelerator has one configured (capture-only streams).
	DisableCA bool
}

// NewPipeline builds a batched, concurrent frame pipeline: a bounded
// worker pool streaming scenes through Capture -> Compressive
// Acquisition -> optional MVM with per-frame deterministic noise. See
// docs/PIPELINE.md.
func (a *Accelerator) NewPipeline(opts PipelineOptions) (*Pipeline, error) {
	seed := a.cfg.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	capool := a.cfg.CAPool
	if opts.DisableCA {
		capool = 0
	}
	var kern kernels.Kernel
	if opts.Kernel != "" {
		if a.eng == nil {
			return nil, fmt.Errorf("lightator: kernel stage needs compressive acquisition (CAPool = 0)")
		}
		k, err := a.eng.Kernel(opts.Kernel)
		if err != nil {
			return nil, err
		}
		kern = k
	}
	var inferModel pipeline.InferModel
	if opts.Infer != "" {
		if a.inf == nil {
			return nil, fmt.Errorf("lightator: inference stage needs compressive acquisition (CAPool = 0)")
		}
		m, err := a.inf.Model(opts.Infer)
		if err != nil {
			return nil, err
		}
		inferModel = m
	}
	return pipeline.New(pipeline.Config{
		Workers: opts.Workers,
		Queue:   opts.Queue,
		Seed:    seed,
		CAPool:  capool,
		Weights: opts.Weights,
		Kernel:  kern,
		Infer:   inferModel,
		Core:    a.core,
		// Workers clone the accelerator's own array, so pipeline capture
		// uses the same device models as the serial Capture path.
		Array: a.array,
	})
}

// firstBatchErr surfaces the first per-frame error of a batch run.
func firstBatchErr(results []PipelineResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// CaptureBatch captures a batch of scenes across `workers` goroutines
// (each worker owns a clone of the sensor array), returning frames in
// input order.
func (a *Accelerator) CaptureBatch(scenes []*Image, workers int) ([]*Frame, error) {
	p, err := a.NewPipeline(PipelineOptions{Workers: workers, DisableCA: true})
	if err != nil {
		return nil, err
	}
	results, _, err := p.Run(scenes)
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	frames := make([]*Frame, len(results))
	for i, r := range results {
		frames[i] = r.Frame
	}
	return frames, nil
}

// AcquireCompressedBatch runs capture + compressive acquisition over a
// batch of scenes with bounded parallelism. Frame i's noise is seeded
// from (Config.Seed, i), so the batch is reproducible for any worker
// count.
func (a *Accelerator) AcquireCompressedBatch(scenes []*Image, workers int) ([]*Image, error) {
	if a.ca == nil {
		return nil, fmt.Errorf("lightator: compressive acquisition disabled (CAPool = 0)")
	}
	p, err := a.NewPipeline(PipelineOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	results, _, err := p.Run(scenes)
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	out := make([]*Image, len(results))
	for i, r := range results {
		out[i] = r.Compressed
	}
	return out, nil
}

// Kernels lists the registered compressed-domain processing kernels,
// sorted by name; empty when compressive acquisition is disabled. See
// docs/KERNELS.md for each operator's math.
func (a *Accelerator) Kernels() []string {
	if a.eng == nil {
		return nil
	}
	return a.eng.Names()
}

// KernelDescription returns the one-line summary of a registered kernel.
func (a *Accelerator) KernelDescription(name string) (string, error) {
	if a.eng == nil {
		return "", fmt.Errorf("lightator: compressed-domain kernels disabled (CAPool = 0)")
	}
	k, err := a.eng.Kernel(name)
	if err != nil {
		return "", err
	}
	return k.Description(), nil
}

// KernelSolverPasses reports an iterative kernel's realized optical-pass
// totals: how many forward/adjoint passes all its Apply calls so far
// have executed, over how many compressed samples. ok is false for
// non-iterative kernels (single-pass windowed operators have nothing to
// meter). passes/samples is the realized average pass count — the number
// that makes reconstruct-cg's adaptive stopping observable (lightator-
// bench reports it per kernel).
func (a *Accelerator) KernelSolverPasses(name string) (passes, samples uint64, ok bool, err error) {
	if a.eng == nil {
		return 0, 0, false, fmt.Errorf("lightator: compressed-domain kernels disabled (CAPool = 0)")
	}
	k, err := a.eng.Kernel(name)
	if err != nil {
		return 0, 0, false, err
	}
	stats, ok := k.(kernels.SolverStats)
	if !ok {
		return 0, 0, false, nil
	}
	passes, samples = stats.PassTotals()
	return passes, samples, true, nil
}

// kernelPipeline returns the cached single-kernel pipeline behind
// ProcessCompressed, building it on first use.
func (a *Accelerator) kernelPipeline(kernel string) (*Pipeline, error) {
	a.pipeMu.Lock()
	defer a.pipeMu.Unlock()
	if p, ok := a.kernPipes[kernel]; ok {
		return p, nil
	}
	p, err := a.NewPipeline(PipelineOptions{Kernel: kernel})
	if err != nil {
		return nil, err
	}
	a.kernPipes[kernel] = p
	return p, nil
}

// ProcessCompressed captures a scene, compresses it with the CA, and runs
// the named compressed-domain kernel on the measurement plane — all three
// stages through the optical core. The scene is processed exactly as
// frame 0 of a seeded batch under Config.Seed, so the result is
// bit-identical to the served /v1/process response for the same request
// seed, in every fidelity. The output plane holds raw operator results,
// which may lie outside [0,1] (e.g. signed edge responses).
func (a *Accelerator) ProcessCompressed(scene *Image, kernel string) (*Image, error) {
	if a.eng == nil {
		return nil, fmt.Errorf("lightator: compressed-domain kernels disabled (CAPool = 0)")
	}
	p, err := a.kernelPipeline(kernel)
	if err != nil {
		return nil, err
	}
	results, _, err := p.RunSeeded([]pipeline.SeededScene{{Seed: a.cfg.Seed, Scene: scene}})
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	return results[0].Processed, nil
}

// ProcessCompressedBatch runs capture + CA + the named kernel over a
// batch of scenes with bounded parallelism. Frame i's noise is seeded
// from (Config.Seed, i), like the other batched paths, so the batch is
// reproducible for any worker count.
func (a *Accelerator) ProcessCompressedBatch(scenes []*Image, kernel string, workers int) ([]*Image, error) {
	if a.eng == nil {
		return nil, fmt.Errorf("lightator: compressed-domain kernels disabled (CAPool = 0)")
	}
	p, err := a.NewPipeline(PipelineOptions{Workers: workers, Kernel: kernel})
	if err != nil {
		return nil, err
	}
	results, _, err := p.Run(scenes)
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	out := make([]*Image, len(results))
	for i, r := range results {
		out[i] = r.Processed
	}
	return out, nil
}

// Models lists the registered compressed-domain inference models, sorted
// by name; empty when compressive acquisition is disabled. The built-in
// demonstration models (deterministically initialised from Config.Seed)
// are registered at construction; RegisterModel adds trained networks.
// See docs/INFER.md.
func (a *Accelerator) Models() []string {
	if a.inf == nil {
		return nil
	}
	return a.inf.Names()
}

// ModelDescription returns the one-line summary of a registered
// inference model.
func (a *Accelerator) ModelDescription(name string) (string, error) {
	m, err := a.inferModel(name)
	if err != nil {
		return "", err
	}
	return m.Description(), nil
}

// RegisterModel compiles a trained network onto the optical core and
// registers it for inference under the given name (served at /v1/infer
// once a server is built). The network must consume the accelerator's CA
// measurement plane (single channel, SensorRows/CAPool x
// SensorCols/CAPool), end in logits, and have calibrated activation
// quantizers — training with package train satisfies all three. Register
// before NewServer; the network's weights are captured at compile time.
func (a *Accelerator) RegisterModel(name, description string, net *nn.Sequential) error {
	if a.inf == nil {
		return fmt.Errorf("lightator: compressed-domain inference disabled (CAPool = 0)")
	}
	h, w := a.inf.InputDims()
	m, err := infer.Compile(a.core, name, description, net, h, w)
	if err != nil {
		return err
	}
	return a.inf.Register(m)
}

// inferModel resolves a registered model, with the CA-disabled guard.
func (a *Accelerator) inferModel(name string) (*infer.Model, error) {
	if a.inf == nil {
		return nil, fmt.Errorf("lightator: compressed-domain inference disabled (CAPool = 0)")
	}
	return a.inf.Model(name)
}

// inferPipeline returns the cached single-model pipeline behind Infer,
// building it on first use.
func (a *Accelerator) inferPipeline(model string) (*Pipeline, error) {
	a.pipeMu.Lock()
	defer a.pipeMu.Unlock()
	if p, ok := a.inferPipes[model]; ok {
		return p, nil
	}
	p, err := a.NewPipeline(PipelineOptions{Infer: model})
	if err != nil {
		return nil, err
	}
	a.inferPipes[model] = p
	return p, nil
}

// Infer captures a scene, compresses it with the CA, and runs the named
// registered model on the measurement plane — all three stages through
// the optical core — returning the class logits. The scene is processed
// exactly as frame 0 of a seeded batch under Config.Seed, so the result
// is bit-identical to the served /v1/infer response for the same request
// seed, in every fidelity.
func (a *Accelerator) Infer(scene *Image, model string) ([]float64, error) {
	if a.inf == nil {
		return nil, fmt.Errorf("lightator: compressed-domain inference disabled (CAPool = 0)")
	}
	p, err := a.inferPipeline(model)
	if err != nil {
		return nil, err
	}
	results, _, err := p.RunSeeded([]pipeline.SeededScene{{Seed: a.cfg.Seed, Scene: scene}})
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	return results[0].Logits, nil
}

// InferBatch runs capture + CA + the named model over a batch of scenes
// with bounded parallelism. Frame i's noise is seeded from (Config.Seed,
// i), like the other batched paths, so the batch is reproducible for any
// worker count.
func (a *Accelerator) InferBatch(scenes []*Image, model string, workers int) ([][]float64, error) {
	if a.inf == nil {
		return nil, fmt.Errorf("lightator: compressed-domain inference disabled (CAPool = 0)")
	}
	p, err := a.NewPipeline(PipelineOptions{Workers: workers, Infer: model})
	if err != nil {
		return nil, err
	}
	results, _, err := p.Run(scenes)
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	out := make([][]float64, len(results))
	for i, r := range results {
		out[i] = r.Logits
	}
	return out, nil
}

// InferPlane runs the named model directly over a pre-compressed CA
// measurement plane (single channel, SensorRows/CAPool x
// SensorCols/CAPool, values in [0,1]), skipping capture and compression
// — the path for callers that already hold compressed measurements. The
// model executes under Config.Seed with the MVM batches sharded across
// the CPUs; the worker count is unobservable in the result (infer
// determinism contract), so it stays bit-identical to the served
// /v1/infer plane request for the same effective seed.
func (a *Accelerator) InferPlane(plane *Image, model string) ([]float64, error) {
	m, err := a.inferModel(model)
	if err != nil {
		return nil, err
	}
	return m.Apply(plane, a.cfg.Seed, runtime.NumCPU())
}

// InferReference computes the digital reference of a registered model
// over a pre-compressed plane: the same quantized network in exact
// arithmetic with no analog effects. The optical-vs-reference gap
// isolates crosstalk and noise — the fidelity metric lightator-bench
// -infer reports as top-1 agreement.
func (a *Accelerator) InferReference(plane *Image, model string) ([]float64, error) {
	m, err := a.inferModel(model)
	if err != nil {
		return nil, err
	}
	return m.Reference(plane)
}

// DefaultAgreementFrames is the structured-scene sweep size
// ModelAgreement uses when the caller passes frames < 1 — the same batch
// size the committed BENCH_*.json agreement records were measured at.
const DefaultAgreementFrames = 16

// ModelAgreement measures a registered model's optical-vs-reference
// top-1 agreement over `frames` structured test scenes (infer.DiskScenes
// under Config.Seed): every scene runs capture + CA + the model through
// the optical core, the exact digital reference re-runs each compressed
// plane, and the score is the fraction of frames whose top-1 class
// matches. This is the label-free fidelity contract: the same
// measurement lightator-bench -infer records into BENCH_*.json, the
// cmd/benchdiff agreement gate enforces in CI, and GET /v1/models
// reports per served model.
func (a *Accelerator) ModelAgreement(model string, frames int) (float64, error) {
	if a.inf == nil {
		return 0, fmt.Errorf("lightator: compressed-domain inference disabled (CAPool = 0)")
	}
	if frames < 1 {
		frames = DefaultAgreementFrames
	}
	scenes := infer.DiskScenes(frames, a.cfg.SensorRows, a.cfg.SensorCols, a.cfg.Seed)
	p, err := a.inferPipeline(model)
	if err != nil {
		return 0, err
	}
	results, _, err := p.Run(scenes)
	if err != nil {
		return 0, err
	}
	optical := make([][]float64, len(results))
	reference := make([][]float64, len(results))
	for i, r := range results {
		if r.Err != nil {
			return 0, r.Err
		}
		ref, err := a.InferReference(r.Compressed, model)
		if err != nil {
			return 0, err
		}
		optical[i] = r.Logits
		reference[i] = ref
	}
	return infer.Agreement(optical, reference), nil
}

// MatVecBatch programs the weight matrix once and streams a batch of
// activation vectors through it, sharding the matrix rows across up to
// `workers` goroutines. Deterministic for a given Config.Seed. Every
// MVM the facade serves — this path, the CA, kernels and inference —
// funnels through the optical core's allocation-free seeded apply
// (flat programmed-matrix layout, pooled scratch and noise streams;
// see docs/PERF.md).
func (a *Accelerator) MatVecBatch(weights [][]float64, activations [][]float64, workers int) ([][]float64, error) {
	return a.core.MatVecBatch(weights, activations, workers, a.cfg.Seed)
}

// AggregateReports folds per-frame simulation reports into a batch-level
// summary (modeled batch FPS, power envelope, workload totals).
func AggregateReports(reports []*PerformanceReport) (*BatchPerformanceReport, error) {
	return arch.Aggregate(reports)
}

// Simulate runs a named descriptor model ("lenet", "vgg9", "vgg9-ca",
// "vgg16", "vgg13", "alexnet") through the architecture simulator at the
// accelerator's precision.
func (a *Accelerator) Simulate(model string) (*PerformanceReport, error) {
	layers, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	return arch.Simulate(model, layers, a.cfg.Precision.schedule(), a.params)
}

// SimulateLayers runs an arbitrary layer list through the simulator.
func (a *Accelerator) SimulateLayers(name string, layers []LayerDims) (*PerformanceReport, error) {
	return arch.Simulate(name, layers, a.cfg.Precision.schedule(), a.params)
}

// Models lists the built-in descriptor models.
func Models() []string {
	return []string{"lenet", "vgg9", "vgg9-ca", "vgg9-cifar100", "vgg13", "vgg16", "alexnet"}
}
