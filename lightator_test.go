package lightator

import (
	"math"
	"testing"
)

func TestDefaultConfigBuilds(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc.Config().SensorRows != 256 || acc.Config().SensorCols != 256 {
		t.Error("default sensor not 256x256")
	}
}

func TestPrecisionNames(t *testing.T) {
	cases := []struct {
		name string
		p    Precision
		want string
	}{
		{"flagship", Precision{WBits: 4, ABits: 4}, "[4:4]"},
		{"reduced", Precision{WBits: 2, ABits: 4}, "[2:4]"},
		{"asymmetric", Precision{WBits: 3, ABits: 2}, "[3:2]"},
		{"mx", Precision{WBits: 3, ABits: 4, MXFirstWBits: 4}, "[4:4][3:4]"},
		{"mx-2bit-rest", Precision{WBits: 2, ABits: 4, MXFirstWBits: 4}, "[4:4][2:4]"},
		{"mx-equal-collapses", Precision{WBits: 4, ABits: 4, MXFirstWBits: 4}, "[4:4]"},
		{"zero-mx-is-uniform", Precision{WBits: 4, ABits: 4, MXFirstWBits: 0}, "[4:4]"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("%s: Name() = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mod := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"ca disabled", mod(func(c *Config) { c.CAPool = 0 }), true},
		{"4x4 pooling", mod(func(c *Config) { c.CAPool = 4 }), true},
		{"paper 2-bit weights", mod(func(c *Config) { c.Precision.WBits = 2 }), true},
		{"zero wbits", mod(func(c *Config) { c.Precision.WBits = 0 }), false},
		{"negative wbits", mod(func(c *Config) { c.Precision.WBits = -3 }), false},
		{"oversized wbits", mod(func(c *Config) { c.Precision.WBits = 9 }), false},
		{"zero abits", mod(func(c *Config) { c.Precision.ABits = 0 }), false},
		{"negative abits", mod(func(c *Config) { c.Precision.ABits = -1 }), false},
		{"negative mx bits", mod(func(c *Config) { c.Precision.MXFirstWBits = -2 }), false},
		{"odd ca pool", mod(func(c *Config) { c.CAPool = 3 }), false},
		{"unit ca pool", mod(func(c *Config) { c.CAPool = 1 }), false},
		{"negative ca pool", mod(func(c *Config) { c.CAPool = -2 }), false},
		{"negative sensor", mod(func(c *Config) { c.SensorRows = -1 }), false},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestCapturePipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 16, 16
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scene := NewImage(16, 16, 3)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			for c := 0; c < 3; c++ {
				scene.Set(y, x, c, float64(x)/15)
			}
		}
	}
	frame, err := acc.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	if frame.CodeAt(0, 0) != 0 {
		t.Error("dark corner not code 0")
	}
	if frame.CodeAt(0, 15) != 15 {
		t.Error("bright corner not code 15")
	}
	small, err := acc.AcquireCompressed(scene)
	if err != nil {
		t.Fatal(err)
	}
	if small.H != 8 || small.W != 8 || small.C != 1 {
		t.Fatalf("compressed dims %dx%dx%d", small.H, small.W, small.C)
	}
	// Gradient preserved after compression.
	if small.At(0, 7, 0) <= small.At(0, 0, 0) {
		t.Error("compression destroyed the gradient")
	}
}

func TestAcquireCompressedDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CAPool = 0
	cfg.SensorRows, cfg.SensorCols = 8, 8
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.AcquireCompressed(NewImage(8, 8, 3)); err == nil {
		t.Error("CA disabled but compression succeeded")
	}
}

func TestMatVecThroughFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fidelity = Ideal
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, -1, 0.5}, {-0.5, 0.25, 0.75}}
	x := []float64{1, 0.5, 0.25}
	y, err := acc.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 2 {
		t.Fatalf("output length %d", len(y))
	}
	// Quantized ideal arithmetic tracks the float result within the
	// 4-bit budget.
	want0 := 1.0 - 0.5 + 0.5*0.25
	if math.Abs(y[0]-want0) > 0.2 {
		t.Errorf("y[0] = %g, want about %g", y[0], want0)
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Models() {
		rep, err := acc.Simulate(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if rep.FPS <= 0 || rep.MaxPower <= 0 {
			t.Errorf("%s: degenerate report", m)
		}
	}
	if _, err := acc.Simulate("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRingReExport(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	if r.QFactor(CBandCenter) < 1000 {
		t.Error("weight-bank ring Q too low through facade")
	}
}

func TestPrecisionValidationThroughNew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Precision.WBits = 0
	if _, err := New(cfg); err == nil {
		t.Error("0-bit weights accepted")
	}
	cfg = DefaultConfig()
	cfg.CAPool = 3
	if _, err := New(cfg); err == nil {
		t.Error("odd CA pool accepted")
	}
}

// batchScenes builds deterministic per-frame-distinct RGB scenes.
func batchScenes(n, rows, cols int) []*Image {
	scenes := make([]*Image, n)
	for i := range scenes {
		s := NewImage(rows, cols, 3)
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				for c := 0; c < 3; c++ {
					s.Set(y, x, c, float64((y*cols+x+i*37+c*11)%97)/96)
				}
			}
		}
		scenes[i] = s
	}
	return scenes
}

func smallAccelerator(t *testing.T, fid Fidelity) *Accelerator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 16, 16
	cfg.Fidelity = fid
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestCaptureBatchMatchesSerial(t *testing.T) {
	acc := smallAccelerator(t, Physical)
	scenes := batchScenes(9, 16, 16)
	frames, err := acc.CaptureBatch(scenes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scenes {
		want, err := acc.Capture(s)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Codes {
			if frames[i].Codes[j] != want.Codes[j] {
				t.Fatalf("frame %d code %d: batch %d != serial %d", i, j, frames[i].Codes[j], want.Codes[j])
			}
		}
	}
}

func TestAcquireCompressedBatchMatchesSerial(t *testing.T) {
	// Noiseless fidelities: the batch path must agree with the serial
	// facade path bit-for-bit.
	for _, fid := range []Fidelity{Ideal, Physical} {
		acc := smallAccelerator(t, fid)
		scenes := batchScenes(5, 16, 16)
		batch, err := acc.AcquireCompressedBatch(scenes, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range scenes {
			want, err := acc.AcquireCompressed(s)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want.Pix {
				if batch[i].Pix[j] != want.Pix[j] {
					t.Fatalf("%v frame %d pixel %d: batch %g != serial %g", fid, i, j, batch[i].Pix[j], want.Pix[j])
				}
			}
		}
	}
}

func TestAcquireCompressedBatchDeterministicNoisy(t *testing.T) {
	acc := smallAccelerator(t, PhysicalNoisy)
	scenes := batchScenes(6, 16, 16)
	a, err := acc.AcquireCompressedBatch(scenes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := acc.AcquireCompressedBatch(scenes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Pix {
			if a[i].Pix[j] != b[i].Pix[j] {
				t.Fatalf("noisy batch not scheduling-invariant: frame %d pixel %d", i, j)
			}
		}
	}
}

func TestMatVecBatchThroughFacade(t *testing.T) {
	acc := smallAccelerator(t, Ideal)
	w := [][]float64{{1, -1, 0.5}, {-0.5, 0.25, 0.75}}
	xs := [][]float64{{1, 0.5, 0.25}, {0.25, 1, 0}, {0, 0, 1}}
	ys, err := acc.MatVecBatch(w, xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := acc.MatVec(w, x)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if ys[i][r] != want[r] {
				t.Fatalf("frame %d row %d: batch %g != serial %g", i, r, ys[i][r], want[r])
			}
		}
	}
}

func TestPipelineThroughFacade(t *testing.T) {
	acc := smallAccelerator(t, PhysicalNoisy)
	weights := make([][]float64, 3)
	for r := range weights {
		weights[r] = make([]float64, 64) // (16/2)*(16/2) CA outputs
		for c := range weights[r] {
			weights[r][c] = float64((r+c)%5)/4 - 0.5
		}
	}
	p, err := acc.NewPipeline(PipelineOptions{Workers: 4, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	scenes := batchScenes(8, 16, 16)
	results, stats, err := p.Run(scenes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 || stats.Frames != 8 || stats.FPS <= 0 {
		t.Fatalf("degenerate run: %d results, %+v", len(results), stats)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("frame %d: %v", i, r.Err)
		}
		if r.Index != i || r.Frame == nil || r.Compressed == nil || len(r.Output) != 3 {
			t.Fatalf("frame %d: incomplete result", i)
		}
	}
}

func TestAggregateReportsThroughFacade(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate("lenet")
	if err != nil {
		t.Fatal(err)
	}
	b, err := AggregateReports([]*PerformanceReport{rep, rep})
	if err != nil {
		t.Fatal(err)
	}
	if b.Frames != 2 || b.BatchFPS <= 0 {
		t.Errorf("degenerate batch report %+v", b)
	}
}

func TestKernelsRegistryThroughFacade(t *testing.T) {
	acc := smallAccelerator(t, Physical)
	names := acc.Kernels()
	if len(names) == 0 {
		t.Fatal("no registered kernels on a CA-enabled accelerator")
	}
	for _, name := range names {
		desc, err := acc.KernelDescription(name)
		if err != nil || desc == "" {
			t.Errorf("kernel %s: description %q, err %v", name, desc, err)
		}
	}
	// CA disabled: the kernel surface reports the same disabled error as
	// AcquireCompressed.
	cfg := DefaultConfig()
	cfg.SensorRows, cfg.SensorCols, cfg.CAPool = 16, 16, 0
	noCA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := noCA.Kernels(); got != nil {
		t.Errorf("CA-disabled Kernels() = %v, want nil", got)
	}
	if _, err := noCA.ProcessCompressed(batchScenes(1, 16, 16)[0], "edge"); err == nil {
		t.Error("CA-disabled ProcessCompressed succeeded")
	}
}

// TestProcessCompressedBatchDeterministic pins the batched kernel path's
// scheduling invariance in PhysicalNoisy fidelity, and that the batch's
// frame 0 equals the single-scene ProcessCompressed call (both are
// seeded from (Config.Seed, 0)).
func TestProcessCompressedBatchDeterministic(t *testing.T) {
	acc := smallAccelerator(t, PhysicalNoisy)
	scenes := batchScenes(4, 16, 16)
	a, err := acc.ProcessCompressedBatch(scenes, "edge", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := acc.ProcessCompressedBatch(scenes, "edge", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Pix {
			if a[i].Pix[j] != b[i].Pix[j] {
				t.Fatalf("noisy kernel batch not scheduling-invariant: frame %d pixel %d", i, j)
			}
		}
	}
	single, err := acc.ProcessCompressed(scenes[0], "edge")
	if err != nil {
		t.Fatal(err)
	}
	for j := range single.Pix {
		if a[0].Pix[j] != single.Pix[j] {
			t.Fatalf("batch frame 0 differs from ProcessCompressed at pixel %d", j)
		}
	}
	if _, err := acc.ProcessCompressed(scenes[0], "nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestProcessCompressedShapes checks each built-in kernel's output
// geometry on the 16x16 sensor with 2x2 CA (an 8x8 compressed plane).
func TestProcessCompressedShapes(t *testing.T) {
	acc := smallAccelerator(t, Ideal)
	scene := batchScenes(1, 16, 16)[0]
	want := map[string][2]int{
		"reconstruct":      {16, 16},
		"reconstruct-iter": {16, 16},
		"edge":             {8, 8},
		"denoise":          {8, 8},
		"sharpen":          {8, 8},
		"downsample2x":     {4, 4},
	}
	for name, dims := range want {
		out, err := acc.ProcessCompressed(scene, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.H != dims[0] || out.W != dims[1] {
			t.Errorf("%s: output %dx%d, want %dx%d", name, out.H, out.W, dims[0], dims[1])
		}
	}
}
