package lightator

import (
	"math"
	"testing"
)

func TestDefaultConfigBuilds(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc.Config().SensorRows != 256 || acc.Config().SensorCols != 256 {
		t.Error("default sensor not 256x256")
	}
}

func TestPrecisionNames(t *testing.T) {
	if (Precision{WBits: 4, ABits: 4}).Name() != "[4:4]" {
		t.Error("uniform name")
	}
	if (Precision{WBits: 3, ABits: 4, MXFirstWBits: 4}).Name() != "[4:4][3:4]" {
		t.Error("MX name")
	}
}

func TestCapturePipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 16, 16
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scene := NewImage(16, 16, 3)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			for c := 0; c < 3; c++ {
				scene.Set(y, x, c, float64(x)/15)
			}
		}
	}
	frame, err := acc.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	if frame.CodeAt(0, 0) != 0 {
		t.Error("dark corner not code 0")
	}
	if frame.CodeAt(0, 15) != 15 {
		t.Error("bright corner not code 15")
	}
	small, err := acc.AcquireCompressed(scene)
	if err != nil {
		t.Fatal(err)
	}
	if small.H != 8 || small.W != 8 || small.C != 1 {
		t.Fatalf("compressed dims %dx%dx%d", small.H, small.W, small.C)
	}
	// Gradient preserved after compression.
	if small.At(0, 7, 0) <= small.At(0, 0, 0) {
		t.Error("compression destroyed the gradient")
	}
}

func TestAcquireCompressedDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CAPool = 0
	cfg.SensorRows, cfg.SensorCols = 8, 8
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.AcquireCompressed(NewImage(8, 8, 3)); err == nil {
		t.Error("CA disabled but compression succeeded")
	}
}

func TestMatVecThroughFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fidelity = Ideal
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, -1, 0.5}, {-0.5, 0.25, 0.75}}
	x := []float64{1, 0.5, 0.25}
	y, err := acc.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 2 {
		t.Fatalf("output length %d", len(y))
	}
	// Quantized ideal arithmetic tracks the float result within the
	// 4-bit budget.
	want0 := 1.0 - 0.5 + 0.5*0.25
	if math.Abs(y[0]-want0) > 0.2 {
		t.Errorf("y[0] = %g, want about %g", y[0], want0)
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Models() {
		rep, err := acc.Simulate(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if rep.FPS <= 0 || rep.MaxPower <= 0 {
			t.Errorf("%s: degenerate report", m)
		}
	}
	if _, err := acc.Simulate("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRingReExport(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	if r.QFactor(CBandCenter) < 1000 {
		t.Error("weight-bank ring Q too low through facade")
	}
}

func TestPrecisionValidationThroughNew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Precision.WBits = 0
	if _, err := New(cfg); err == nil {
		t.Error("0-bit weights accepted")
	}
	cfg = DefaultConfig()
	cfg.CAPool = 3
	if _, err := New(cfg); err == nil {
		t.Error("odd CA pool accepted")
	}
}
