package lightator

import (
	"runtime"
	"time"

	"lightator/internal/kernels"
	"lightator/internal/pipeline"
	"lightator/internal/server"
)

// Server is the HTTP/JSON serving layer over an accelerator:
// /v1/capture, /v1/compress, /v1/process, /v1/matvec, /v1/simulate and
// /v1/kernels backed by a dynamic micro-batcher over the frame pipeline,
// with admission control, a content-hash response cache for
// deterministic fidelities, /metrics and /healthz, and graceful drain.
// See docs/SERVER.md and docs/API.md.
type Server = server.Server

// ServerMetrics is a snapshot of a running server's counters and pipeline
// stats.
type ServerMetrics = server.MetricsSnapshot

// Wire-format types: images and frames travel as JSON envelopes with
// base64-encoded raw samples, losslessly — a round-tripped value is
// bit-identical to the original.
type (
	// ImageWire is the transport form of an Image.
	ImageWire = server.ImageWire
	// FrameWire is the transport form of a Frame.
	FrameWire = server.FrameWire
	// CaptureRequest is the /v1/capture request body.
	CaptureRequest = server.CaptureRequest
	// CaptureResponse is the /v1/capture response body.
	CaptureResponse = server.CaptureResponse
	// CompressRequest is the /v1/compress request body.
	CompressRequest = server.CompressRequest
	// CompressResponse is the /v1/compress response body.
	CompressResponse = server.CompressResponse
	// ProcessRequest is the /v1/process request body (scene + kernel name).
	ProcessRequest = server.ProcessRequest
	// ProcessResponse is the /v1/process response body (the kernel's
	// output plane; samples may lie outside [0,1]).
	ProcessResponse = server.ProcessResponse
	// InferRequest is the /v1/infer request body (scene or pre-compressed
	// plane, + model name).
	InferRequest = server.InferRequest
	// InferResponse is the /v1/infer response body (logits + top-1 class).
	InferResponse = server.InferResponse
	// ModelInfo describes one registered compressed-domain inference model.
	ModelInfo = server.ModelInfo
	// ModelsResponse is the GET /v1/models response body.
	ModelsResponse = server.ModelsResponse
	// KernelInfo describes one registered compressed-domain kernel.
	KernelInfo = server.KernelInfo
	// KernelsResponse is the GET /v1/kernels response body.
	KernelsResponse = server.KernelsResponse
	// MatVecRequest is the /v1/matvec request body.
	MatVecRequest = server.MatVecRequest
	// MatVecResponse is the /v1/matvec response body.
	MatVecResponse = server.MatVecResponse
	// SimulateRequest is the /v1/simulate request ({"model": "lenet"}).
	SimulateRequest = server.SimulateRequest
	// ServerError is the body of every non-2xx server response
	// ({"code","message","detail"} plus the legacy "error" string).
	ServerError = server.ErrorResponse
	// Envelope is the request fields every frame endpoint shares (scene
	// + optional seed override).
	Envelope = server.Envelope
	// SessionRequest opens a streaming session (POST /v1/session).
	SessionRequest = server.SessionRequest
	// SessionResponse describes an opened session.
	SessionResponse = server.SessionResponse
	// SessionFrame is one NDJSON input line of a session frame stream.
	SessionFrame = server.SessionFrame
	// SessionResult is one NDJSON output line of a session frame stream.
	SessionResult = server.SessionResult
	// SessionSummary is the trailing NDJSON record of a clean stream.
	SessionSummary = server.SessionSummary
	// SessionStatsResponse reports a session's cumulative counters.
	SessionStatsResponse = server.SessionStatsResponse
	// DeltaWire is the wire form of the temporal-reuse configuration.
	DeltaWire = server.DeltaWire
)

// Wire-request constructors (the composite-literal forms changed when
// the shared envelope landed).
var (
	// NewCaptureRequest builds a /v1/capture body; seed may be nil.
	NewCaptureRequest = server.NewCaptureRequest
	// NewCompressRequest builds a /v1/compress body; seed may be nil.
	NewCompressRequest = server.NewCompressRequest
	// NewProcessRequest builds a /v1/process body; seed may be nil.
	NewProcessRequest = server.NewProcessRequest
)

// EncodeImage converts an image to its wire form.
func EncodeImage(im *Image) ImageWire { return server.EncodeImage(im) }

// DecodeImage converts a wire image back, validating dimensions against
// the payload.
func DecodeImage(w ImageWire) (*Image, error) { return server.DecodeImage(w) }

// EncodeFrame converts a frame readout to its wire form.
func EncodeFrame(f *Frame) FrameWire { return server.EncodeFrame(f) }

// DecodeFrame converts a wire frame back, validating dimensions.
func DecodeFrame(w FrameWire) (*Frame, error) { return server.DecodeFrame(w) }

// ServeOptions configure the serving layer built over an accelerator.
// Zero values take the documented defaults.
type ServeOptions struct {
	// Workers bounds each pipeline batch's concurrency; 0 means
	// runtime.NumCPU().
	Workers int
	// BatchSize flushes a micro-batch at this many coalesced requests
	// (default 8).
	BatchSize int
	// BatchDelay flushes a partial batch this long after its first
	// request (default 2ms). Raise it to trade tail latency for bigger
	// batches.
	BatchDelay time.Duration
	// Queue bounds the admission queue per batched endpoint; a full
	// queue answers 429 (default 64).
	Queue int
	// MaxBatches bounds concurrent in-flight pipeline batches per
	// endpoint (default 2).
	MaxBatches int
	// CacheEntries sizes the content-hash response LRU (default 256;
	// negative disables).
	CacheEntries int
	// AgreementFrames is the structured-scene sweep size used to measure
	// each served model's optical-vs-reference top-1 agreement at server
	// construction (reported by GET /v1/models). 0 means
	// DefaultAgreementFrames; negative skips the measurement (models
	// list without a reference_agreement field).
	AgreementFrames int
	// TraceEntries sizes the GET /debug/traces ring of per-request
	// traces (default 256; negative disables retention — response
	// headers are still set). See docs/OBSERVABILITY.md.
	TraceEntries int
	// Debug mounts the opt-in debug mux: net/http/pprof under
	// /debug/pprof/ and the runtime snapshot at /debug/runtime. Off by
	// default — profiling endpoints do not belong on an unauthenticated
	// production surface.
	Debug bool
	// MaxSessions bounds concurrently open streaming sessions
	// (default 64).
	MaxSessions int
	// SessionIdleTimeout expires streaming sessions with no activity
	// (default 60s; negative disables expiry).
	SessionIdleTimeout time.Duration
	// SessionWindow is the default per-stream in-flight frame window —
	// the connection-level backpressure bound (default 8).
	SessionWindow int
	// RequestTimeout bounds each compute request's wall time; a request
	// that outlives it answers 504 deadline_exceeded (its frame may still
	// complete inside its batch). 0 or negative disables.
	RequestTimeout time.Duration
	// ReadHeaderTimeout and IdleTimeout harden the HTTP listener against
	// slow-loris clients and idle keep-alive pile-ups (defaults 10s and
	// 120s; negative disables).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// RejectDegraded turns degraded service into refusal: while any
	// optical component is degraded, compute requests answer 503
	// degraded_unavailable instead of a degraded-flagged 200
	// (docs/FAULTS.md#the-wire-contract).
	RejectDegraded bool
	// ShedCacheMiss, ShedNonSession and ShedAll are the tiered load
	// shedder's queue-occupancy thresholds in (0,1]: uncached bulk
	// compute sheds first, then all non-session compute, then everything
	// including session streams (defaults 0.75 / 0.90 / 0.98; negative
	// disables a tier). See docs/FAULTS.md#load-shedding.
	ShedCacheMiss  float64
	ShedNonSession float64
	ShedAll        float64
}

// NewServer builds the HTTP serving layer over this accelerator. The
// determinism contract: a response is byte-identical to the corresponding
// direct facade call under the request's effective seed —
//
//	/v1/capture  == Capture(scene)                                (all fidelities)
//	/v1/compress == AcquireCompressedBatch([]{scene}, 1)          (all fidelities)
//	             == AcquireCompressed(scene)                      (Ideal, Physical)
//	/v1/process  == ProcessCompressed(scene, kernel)              (all fidelities)
//	/v1/infer    == Infer(scene, model)                           (all fidelities)
//	             == InferPlane(plane, model)    (plane requests)  (all fidelities)
//	/v1/matvec   == MatVecBatch(w, [][]float64{x}, 1)             (all fidelities)
//	             == MatVec(w, x)                                  (Ideal, Physical)
//	/v1/simulate == Simulate(model)
//
// no matter how the micro-batcher coalesces concurrent requests. Requests
// default to the accelerator's Config.Seed; a request-level "seed" field
// overrides it per call.
func (a *Accelerator) NewServer(opts ServeOptions) (*Server, error) {
	capture, err := a.NewPipeline(PipelineOptions{Workers: opts.Workers, DisableCA: true})
	if err != nil {
		return nil, err
	}
	var compress *Pipeline
	process := make(map[string]*Pipeline)
	kernelInfos := []KernelInfo{}
	kernelObjs := make(map[string]kernels.Kernel)
	inferPipes := make(map[string]*Pipeline)
	modelInfos := []ModelInfo{}
	modelObjs := make(map[string]pipeline.InferModel)
	if a.ca != nil {
		compress, err = a.NewPipeline(PipelineOptions{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		// One capture+CA+kernel pipeline per registered kernel, each with
		// its own micro-batcher in the serving layer. The bare operator
		// rides along for the session layer, which runs the kernel stage
		// itself after the temporal-delta diff.
		for _, name := range a.Kernels() {
			p, err := a.NewPipeline(PipelineOptions{Workers: opts.Workers, Kernel: name})
			if err != nil {
				return nil, err
			}
			process[name] = p
			k, err := a.eng.Kernel(name)
			if err != nil {
				return nil, err
			}
			kernelObjs[name] = k
			desc, err := a.KernelDescription(name)
			if err != nil {
				return nil, err
			}
			kernelInfos = append(kernelInfos, KernelInfo{Name: name, Description: desc})
		}
		// Likewise one capture+CA+infer pipeline per registered model.
		// Models registered after NewServer are not served — register
		// trained networks first.
		for _, name := range a.Models() {
			p, err := a.NewPipeline(PipelineOptions{Workers: opts.Workers, Infer: name})
			if err != nil {
				return nil, err
			}
			inferPipes[name] = p
			m, err := a.inf.Model(name)
			if err != nil {
				return nil, err
			}
			modelObjs[name] = m
			h, w := m.InputDims()
			info := ModelInfo{
				Name: name, Description: m.Description(),
				InputH: h, InputW: w, Classes: m.Classes(),
			}
			if opts.AgreementFrames >= 0 {
				agree, err := a.ModelAgreement(name, opts.AgreementFrames)
				if err != nil {
					return nil, err
				}
				info.ReferenceAgreement = &agree
			}
			modelInfos = append(modelInfos, info)
		}
	}
	return server.New(server.Backend{
		Capture:       capture,
		Compress:      compress,
		Process:       process,
		Kernels:       kernelInfos,
		Infer:         inferPipes,
		Models:        modelInfos,
		KernelObjects: kernelObjs,
		ModelObjects:  modelObjs,
		// Plane requests bypass the pipeline, so the worker bound is
		// applied here; the infer determinism contract keeps the worker
		// count unobservable in the response bytes.
		InferPlane: func(model string, plane *Image, seed int64) ([]float64, error) {
			m, err := a.inferModel(model)
			if err != nil {
				return nil, err
			}
			workers := opts.Workers
			if workers <= 0 {
				workers = runtime.NumCPU()
			}
			return m.Apply(plane, seed, workers)
		},
		Core:          a.core,
		Seed:          a.cfg.Seed,
		Deterministic: a.cfg.Fidelity != PhysicalNoisy,
		Simulate:      a.Simulate,
		// The observability layer prices every request with this
		// accelerator's energy model at its configured weight precision.
		Energy: a.params,
		WBits:  a.cfg.Precision.WBits,
	}, server.Config{
		BatchSize:          opts.BatchSize,
		BatchDelay:         opts.BatchDelay,
		Queue:              opts.Queue,
		MaxBatches:         opts.MaxBatches,
		CacheEntries:       opts.CacheEntries,
		TraceEntries:       opts.TraceEntries,
		Debug:              opts.Debug,
		MaxSessions:        opts.MaxSessions,
		SessionIdleTimeout: opts.SessionIdleTimeout,
		SessionWindow:      opts.SessionWindow,
		RequestTimeout:     opts.RequestTimeout,
		ReadHeaderTimeout:  opts.ReadHeaderTimeout,
		IdleTimeout:        opts.IdleTimeout,
		RejectDegraded:     opts.RejectDegraded,
		ShedCacheMiss:      opts.ShedCacheMiss,
		ShedNonSession:     opts.ShedNonSession,
		ShedAll:            opts.ShedAll,
	})
}
