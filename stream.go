package lightator

import (
	"fmt"

	"lightator/internal/oc"
	"lightator/internal/session"
)

// DeriveSeed is the SplitMix64 seed derivation the streaming contract
// is stated in terms of: session frame i is processed exactly as a
// per-frame call with request seed DeriveSeed(sessionSeed, i).
func DeriveSeed(seed int64, i int) int64 { return oc.DeriveSeed(seed, i) }

// Streaming video sessions: the facade form of the serving layer's
// /v1/session API. A session carries a persistent seed chain — frame i
// is processed exactly as the corresponding per-frame call with seed
// DeriveSeed(sessionSeed, i) — and exploits inter-frame redundancy in
// the compressed domain: consecutive CA measurement planes are diffed
// on a block grid and kernel/inference work runs only where
// measurements changed (bit-identically at the default exact
// threshold). See docs/API.md#sessions and docs/SERVER.md.
type (
	// StreamSession is one streaming video session.
	StreamSession = session.Session
	// SessionStats is a session's cumulative reuse accounting.
	SessionStats = session.Stats
	// SessionFrameResult is one ordered frame's session output.
	SessionFrameResult = session.FrameResult
	// DeltaOptions tunes temporal delta reuse.
	DeltaOptions = session.DeltaConfig
)

// SessionOptions configure a streaming session. Zero values take the
// documented defaults.
type SessionOptions struct {
	// Kind selects the per-frame computation: "compress", "process" or
	// "infer".
	Kind string
	// Kernel names the compressed-domain kernel (kind "process").
	Kernel string
	// Model names the inference model (kind "infer").
	Model string
	// Seed overrides the accelerator's Config.Seed as the session seed
	// when non-nil.
	Seed *int64
	// Workers bounds per-batch pipeline concurrency and the kernel/infer
	// stage parallelism; 0 means runtime.NumCPU(). The determinism
	// contract keeps the count unobservable in output bytes.
	Workers int
	// Window bounds in-flight frames per stream (default 8).
	Window int
	// Delta tunes temporal reuse; the zero value is the exact-threshold
	// default (bit-identical reuse).
	Delta DeltaOptions
}

// NewSession opens a streaming session over this accelerator. The
// returned session's Stream method consumes scenes from a channel and
// emits ordered frame results; output bytes are identical to the
// corresponding per-frame facade calls (AcquireCompressed /
// ProcessCompressed / Infer with seed DeriveSeed(sessionSeed, i)) at
// any worker count. Close the session when done.
func (a *Accelerator) NewSession(opts SessionOptions) (*StreamSession, error) {
	if a.ca == nil {
		return nil, fmt.Errorf("lightator: sessions need compressive acquisition (CAPool = 0)")
	}
	pipe, err := a.NewPipeline(PipelineOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	seed := a.cfg.Seed
	if opts.Seed != nil {
		seed = *opts.Seed
	}
	cfg := session.Config{
		Kind:          session.Kind(opts.Kind),
		Pipe:          pipe,
		Seed:          seed,
		Workers:       opts.Workers,
		Window:        opts.Window,
		Delta:         opts.Delta,
		Deterministic: a.cfg.Fidelity != PhysicalNoisy,
		// Facade sessions have no manager sweeping them; expiry is the
		// caller's concern.
		IdleTimeout: -1,
	}
	switch cfg.Kind {
	case session.KindProcess:
		if cfg.Kernel, err = a.eng.Kernel(opts.Kernel); err != nil {
			return nil, err
		}
	case session.KindInfer:
		if cfg.Model, err = a.inf.Model(opts.Model); err != nil {
			return nil, err
		}
	}
	return session.New("local", cfg)
}
